//! The synthetic experimental testbed of §4.1 (Fig. 5).
//!
//! Each generated dataflow consists of:
//!
//! 1. `LISTGEN_1` — reads the `ListSize` input and produces a flat list of
//!    `d` elements;
//! 2. two linear chains `CHAIN_A_1 … CHAIN_A_l` and `CHAIN_B_1 … CHAIN_B_l`
//!    of one-to-one (atom → atom) processors, so lineage precision is
//!    maintained throughout;
//! 3. `2TO1_FINAL` — a binary cross product joining the two chains.
//!
//! `l` is fixed at generation time; `d` is controlled at run time through
//! the `ListSize` input port, exactly as in the paper. The canonical query
//! of the evaluation is `lin(⟨2TO1_FINAL:Y[p]⟩, {LISTGEN_1})`.

// The workloads here are built from literal specs and run on inputs the
// module itself generates; a builder or engine failure is a bug in the
// generator, so unwrap/expect is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use prov_core::LineageQuery;
use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{BehaviorRegistry, Engine, RunOutcome, TraceSink};
use prov_model::{Index, PortRef, ProcessorName, Value};

/// One point of the experiment configuration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestbedConfig {
    /// Chain length `l`.
    pub l: usize,
    /// Input list size `d`.
    pub d: usize,
}

/// The `l` values of the paper's configuration space (Table 1 columns).
pub const PAPER_L: [usize; 6] = [10, 28, 50, 75, 100, 150];

/// The `d` values of the paper's configuration space (Table 1 rows).
pub const PAPER_D: [usize; 4] = [10, 25, 50, 75];

/// The full Table 1 grid in row-major order.
pub fn paper_grid() -> Vec<TestbedConfig> {
    let mut out = Vec::with_capacity(PAPER_L.len() * PAPER_D.len());
    for &d in &PAPER_D {
        for &l in &PAPER_L {
            out.push(TestbedConfig { l, d });
        }
    }
    out
}

/// Generates the testbed dataflow with chains of length `l`.
pub fn generate(l: usize) -> Dataflow {
    assert!(l >= 1, "chains need at least one processor");
    let mut b = DataflowBuilder::new("testbed");
    b.input("ListSize", PortType::atom(BaseType::Int));

    b.processor_with_behavior("LISTGEN_1", "testbed_listgen")
        .in_port("size", PortType::atom(BaseType::Int))
        .out_port("list", PortType::list(BaseType::String));
    b.arc_from_input("ListSize", "LISTGEN_1", "size").unwrap();

    for chain in ["A", "B"] {
        for i in 1..=l {
            let name = format!("CHAIN_{chain}_{i}");
            b.processor_with_behavior(&name, "testbed_step")
                .in_port("x", PortType::atom(BaseType::String))
                .out_port("y", PortType::atom(BaseType::String));
            if i == 1 {
                b.arc("LISTGEN_1", "list", &name, "x").unwrap();
            } else {
                b.arc(&format!("CHAIN_{chain}_{}", i - 1), "y", &name, "x").unwrap();
            }
        }
    }

    b.processor_with_behavior("2TO1_FINAL", "testbed_combine")
        .in_port("a", PortType::atom(BaseType::String))
        .in_port("b", PortType::atom(BaseType::String))
        .out_port("Y", PortType::atom(BaseType::String));
    b.arc(&format!("CHAIN_A_{l}"), "y", "2TO1_FINAL", "a").unwrap();
    b.arc(&format!("CHAIN_B_{l}"), "y", "2TO1_FINAL", "b").unwrap();

    b.output("product", PortType::nested(BaseType::String, 2));
    b.arc_to_output("2TO1_FINAL", "Y", "product").unwrap();
    b.build().expect("generated testbed dataflows are valid")
}

/// The behaviours the testbed dataflows need.
pub fn registry() -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new();
    r.register_fn("testbed_listgen", |inputs| {
        let d = inputs[0]
            .as_atom()
            .and_then(prov_model::Atom::as_int)
            .ok_or("ListSize must be an integer")?;
        if d < 0 {
            return Err(format!("ListSize must be non-negative, got {d}"));
        }
        Ok(vec![Value::List((0..d).map(|i| Value::str(&format!("item-{i}"))).collect())])
    });
    // One-to-one chain steps: identity keeps values small, so chain length
    // (not payload growth) dominates trace size, as in the paper.
    r.register_fn("testbed_step", |inputs| Ok(vec![inputs[0].clone()]));
    r.register_fn("testbed_combine", |inputs| {
        let a = inputs[0].as_atom().and_then(prov_model::Atom::as_str).ok_or("atom expected")?;
        let b = inputs[1].as_atom().and_then(prov_model::Atom::as_str).ok_or("atom expected")?;
        Ok(vec![Value::str(&format!("{a}*{b}"))])
    });
    r
}

/// Executes one run of `df` with list size `d`, recording into `sink`.
pub fn run(df: &Dataflow, d: usize, sink: &dyn TraceSink) -> RunOutcome {
    Engine::new(registry())
        .execute(df, vec![("ListSize".into(), Value::int(d as i64))], sink)
        .expect("testbed runs are valid")
}

/// The canonical focused lineage query of the evaluation:
/// `lin(⟨2TO1_FINAL:Y[p]⟩, {LISTGEN_1})`.
pub fn focused_query(p: &[u32]) -> LineageQuery {
    LineageQuery::focused(
        PortRef::new("2TO1_FINAL", "Y"),
        Index::from_slice(p),
        [ProcessorName::from("LISTGEN_1")],
    )
}

/// A *partially unfocused* query whose focus set contains `LISTGEN_1`, the
/// final join, and the first `k` processors of each chain — used to grow
/// `|𝒫|` toward ~50% of the graph (Fig. 10).
pub fn partially_unfocused_query(df: &Dataflow, p: &[u32], k: usize) -> LineageQuery {
    let mut focus = vec![ProcessorName::from("LISTGEN_1"), ProcessorName::from("2TO1_FINAL")];
    for chain in ["A", "B"] {
        for i in 1..=k {
            let name = format!("CHAIN_{chain}_{i}");
            if df.processor(&ProcessorName::from(name.as_str())).is_some() {
                focus.push(ProcessorName::from(name.as_str()));
            }
        }
    }
    LineageQuery::focused(PortRef::new("2TO1_FINAL", "Y"), Index::from_slice(p), focus)
}

/// A fully unfocused query over the whole testbed graph.
pub fn unfocused_query(df: &Dataflow, p: &[u32]) -> LineageQuery {
    LineageQuery::unfocused(PortRef::new("2TO1_FINAL", "Y"), Index::from_slice(p), df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::{IndexProj, NaiveLineage};
    use prov_store::TraceStore;

    #[test]
    fn generated_graph_has_expected_size() {
        let df = generate(5);
        // 1 ListGen + 2×5 chain + 1 final.
        assert_eq!(df.node_count(), 12);
        assert_eq!(df.arcs.len(), 1 + 2 + 2 * 4 + 2 + 1);
    }

    #[test]
    fn run_produces_d_squared_products() {
        let df = generate(3);
        let store = TraceStore::in_memory();
        let out = run(&df, 4, &store);
        let product = out.output("product").unwrap();
        assert_eq!(product.len(), 4);
        assert_eq!(product.atom_count(), 16);
        assert_eq!(product.at(&Index::from_slice(&[1, 2])), Some(&Value::str("item-1*item-2")));
    }

    #[test]
    fn trace_size_grows_with_l_and_d() {
        let store = TraceStore::in_memory();
        let mut counts = Vec::new();
        for (l, d) in [(2usize, 3usize), (4, 3), (2, 6)] {
            let df = generate(l);
            let r = run(&df, d, &store).run_id;
            counts.push(store.trace_record_count(r));
        }
        assert!(counts[1] > counts[0], "longer chains → more records");
        assert!(counts[2] > counts[0], "bigger lists → more records");
    }

    #[test]
    fn canonical_query_finds_listgen_inputs_both_ways() {
        let df = generate(4);
        let store = TraceStore::in_memory();
        let r = run(&df, 5, &store).run_id;
        let q = focused_query(&[2, 3]);
        let ni = NaiveLineage::new().run(&store, r, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, r, &q).unwrap();
        assert!(ni.same_bindings(&ip));
        // LISTGEN_1 consumed its size input whole: one binding.
        assert_eq!(ni.bindings.len(), 1);
        assert_eq!(ni.bindings[0].port, PortRef::new("LISTGEN_1", "size"));
        assert_eq!(ni.bindings[0].value, Value::int(5));
    }

    #[test]
    fn partially_unfocused_focus_grows_with_k() {
        let df = generate(10);
        let q1 = partially_unfocused_query(&df, &[0, 0], 1);
        let q5 = partially_unfocused_query(&df, &[0, 0], 5);
        assert_eq!(q1.focus.len(), 2 + 2);
        assert_eq!(q5.focus.len(), 2 + 10);
    }

    #[test]
    fn paper_grid_covers_all_cells() {
        let grid = paper_grid();
        assert_eq!(grid.len(), 24);
        assert!(grid.contains(&TestbedConfig { l: 150, d: 75 }));
    }

    #[test]
    fn zero_size_list_runs_cleanly() {
        let df = generate(2);
        let store = TraceStore::in_memory();
        let out = run(&df, 0, &store);
        assert_eq!(out.output("product"), Some(&Value::empty_list()));
    }
}
