//! A synthetic imaging workload, after the domain that motivated
//! fine-grained lineage in the first place: Woodruff & Stonebraker's
//! image-processing pipelines (paper §1.2, "the space cost of storing the
//! metadata required to trace lineage at a fine grain, for example in
//! imaging applications"). Their *weak* (approximate) inverses are what
//! the paper's accurate intensional inversion improves on.
//!
//! The pipeline tiles an image, processes each tile independently
//! (fine-grained lineage preserved per tile), and mosaics the tiles back
//! together (a many-to-one step with intrinsically coarse lineage):
//!
//! ```text
//! image ─ tile ─ denoise ─ normalize ─┬─ mosaic → image_out
//!        (1→n)   (per tile) (per tile) └──────────→ tiles_out
//! ```

// The workloads here are built from literal specs and run on inputs the
// module itself generates; a builder or engine failure is a bug in the
// generator, so unwrap/expect is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{BehaviorRegistry, Engine, RunOutcome, TraceSink};
use prov_model::{Atom, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds the imaging pipeline.
pub fn imaging_workflow() -> Dataflow {
    let mut b = DataflowBuilder::new("imaging");
    b.input("image", PortType::atom(BaseType::Bytes));
    b.input("tile_count", PortType::atom(BaseType::Int));

    b.processor_with_behavior("tile", "img_tile")
        .in_port("image", PortType::atom(BaseType::Bytes))
        .in_port("n", PortType::atom(BaseType::Int))
        .out_port("tiles", PortType::list(BaseType::Bytes));
    b.arc_from_input("image", "tile", "image").unwrap();
    b.arc_from_input("tile_count", "tile", "n").unwrap();

    b.processor_with_behavior("denoise", "img_denoise")
        .in_port("t", PortType::atom(BaseType::Bytes))
        .out_port("t", PortType::atom(BaseType::Bytes));
    b.arc("tile", "tiles", "denoise", "t").unwrap();

    b.processor_with_behavior("normalize", "img_normalize")
        .in_port("t", PortType::atom(BaseType::Bytes))
        .out_port("t", PortType::atom(BaseType::Bytes));
    b.arc("denoise", "t", "normalize", "t").unwrap();

    b.processor_with_behavior("mosaic", "img_mosaic")
        .in_port("tiles", PortType::list(BaseType::Bytes))
        .out_port("image", PortType::atom(BaseType::Bytes));
    b.arc("normalize", "t", "mosaic", "tiles").unwrap();

    b.output("image_out", PortType::atom(BaseType::Bytes));
    b.arc_to_output("mosaic", "image", "image_out").unwrap();
    b.output("tiles_out", PortType::list(BaseType::Bytes));
    b.arc_to_output("normalize", "t", "tiles_out").unwrap();
    b.build().expect("imaging is a valid workflow")
}

/// The behaviours, operating on raw byte payloads.
pub fn imaging_registry() -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new();
    r.register_fn("img_tile", |inputs| {
        let bytes = match inputs[0].as_atom() {
            Some(Atom::Bytes(b)) => b.clone(),
            _ => return Err("expected a bytes image".into()),
        };
        let n = inputs[1].as_atom().and_then(Atom::as_int).ok_or("tile_count")? as usize;
        if n == 0 {
            return Err("tile_count must be positive".into());
        }
        let size = bytes.len().div_ceil(n);
        let tiles: Vec<Value> = (0..n)
            .map(|i| {
                let start = (i * size).min(bytes.len());
                let end = ((i + 1) * size).min(bytes.len());
                Value::Atom(Atom::Bytes(bytes.slice(start..end)))
            })
            .collect();
        Ok(vec![Value::List(tiles)])
    });
    r.register_fn("img_denoise", |inputs| {
        // "Denoise": clamp bytes into [16, 240].
        transform_tile(&inputs[0], |b| b.clamp(16, 240))
    });
    r.register_fn("img_normalize", |inputs| {
        // "Normalize": shift toward mid-grey.
        transform_tile(&inputs[0], |b| b / 2 + 64)
    });
    r.register_fn("img_mosaic", |inputs| {
        let tiles = inputs[0].as_list().ok_or("expected tiles")?;
        let mut out = Vec::new();
        for t in tiles {
            match t.as_atom() {
                Some(Atom::Bytes(b)) => out.extend_from_slice(b),
                _ => return Err("tiles must be bytes".into()),
            }
        }
        Ok(vec![Value::Atom(Atom::Bytes(bytes::Bytes::from(out)))])
    });
    r
}

fn transform_tile(v: &Value, f: impl Fn(u8) -> u8) -> std::result::Result<Vec<Value>, String> {
    match v.as_atom() {
        Some(Atom::Bytes(b)) => {
            let out: Vec<u8> = b.iter().map(|&x| f(x)).collect();
            Ok(vec![Value::Atom(Atom::Bytes(bytes::Bytes::from(out)))])
        }
        _ => Err("expected a bytes tile".into()),
    }
}

/// A deterministic synthetic "image" of `len` noisy pixels.
pub fn sample_image(len: usize, seed: u64) -> Value {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pixels: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    Value::Atom(Atom::Bytes(bytes::Bytes::from(pixels)))
}

/// Runs the pipeline once.
pub fn run_imaging(df: &Dataflow, image: Value, tiles: usize, sink: &dyn TraceSink) -> RunOutcome {
    Engine::new(imaging_registry())
        .execute(
            df,
            vec![("image".into(), image), ("tile_count".into(), Value::int(tiles as i64))],
            sink,
        )
        .expect("imaging runs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::{IndexProj, LineageQuery, NaiveLineage};
    use prov_model::{Index, PortRef, ProcessorName};
    use prov_store::TraceStore;

    #[test]
    fn pipeline_preserves_pixel_count() {
        let df = imaging_workflow();
        let store = TraceStore::in_memory();
        let out = run_imaging(&df, sample_image(100, 1), 4, &store);
        let img = out.output("image_out").unwrap();
        match img.as_atom() {
            Some(Atom::Bytes(b)) => assert_eq!(b.len(), 100),
            other => panic!("expected bytes, got {other:?}"),
        }
        assert_eq!(out.output("tiles_out").unwrap().len(), 4);
    }

    #[test]
    fn per_tile_lineage_is_fine_grained() {
        // tiles_out[i] depends only on tile i of the tiling stage — the
        // accurate inverse Woodruff & Stonebraker could only approximate.
        let df = imaging_workflow();
        let store = TraceStore::in_memory();
        let run = run_imaging(&df, sample_image(64, 2), 4, &store).run_id;
        for i in 0..4u32 {
            let q = LineageQuery::focused(
                PortRef::new("imaging", "tiles_out"),
                Index::single(i),
                [ProcessorName::from("denoise")],
            );
            let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
            let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
            assert!(ni.same_bindings(&ip));
            assert_eq!(ni.bindings.len(), 1, "{ni}");
            assert_eq!(ni.bindings[0].index, Index::single(i));
        }
    }

    #[test]
    fn mosaic_lineage_is_coarse_by_nature() {
        // The mosaic consumed the whole tile list: its lineage covers the
        // full input image (the intrinsic granularity limit of §2.3).
        let df = imaging_workflow();
        let store = TraceStore::in_memory();
        let run = run_imaging(&df, sample_image(64, 3), 4, &store).run_id;
        let q = LineageQuery::focused(
            PortRef::new("imaging", "image_out"),
            Index::empty(),
            [ProcessorName::from("imaging")],
        );
        let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
        assert!(ni.same_bindings(&ip));
        // Both workflow inputs are in the lineage.
        let ports: Vec<&str> = ni.bindings.iter().map(|b| b.port.port_str()).collect();
        assert!(ports.contains(&"image"));
        assert!(ports.contains(&"tile_count"));
    }

    #[test]
    fn imaging_traces_audit_clean() {
        let df = imaging_workflow();
        let store = TraceStore::in_memory();
        let run = run_imaging(&df, sample_image(32, 4), 2, &store).run_id;
        assert!(prov_core::audit_run(&df, &store, run).unwrap().is_clean());
    }

    #[test]
    fn uneven_tiling_still_reassembles() {
        let df = imaging_workflow();
        let store = TraceStore::in_memory();
        let out = run_imaging(&df, sample_image(10, 5), 3, &store);
        match out.output("image_out").unwrap().as_atom() {
            Some(Atom::Bytes(b)) => assert_eq!(b.len(), 10),
            other => panic!("expected bytes, got {other:?}"),
        }
    }
}
