//! The two real-life workflows of the evaluation, on synthetic substrates.
//!
//! * **GK** — `genes2Kegg` (Fig. 1): maps nested lists of gene IDs to
//!   metabolic pathways. A short, wide workflow ("typical short-paths
//!   design"). The KEGG web services are replaced by [`KeggDb`], a
//!   deterministic synthetic gene→pathway mapping with realistic ID
//!   formats.
//! * **PD** — the BioAid protein discovery workflow: finds protein terms
//!   in PubMed abstracts. A long chain of processors ("longer workflow").
//!   PubMed is replaced by [`PubMedCorpus`].
//!
//! Both substitutions preserve what the evaluation depends on — workflow
//! *shape*, collection structure, and depth mismatches — because the
//! services are black boxes to the provenance machinery (DESIGN.md §3).

// The workloads here are built from literal specs and run on inputs the
// module itself generates; a builder or engine failure is a bug in the
// generator, so unwrap/expect is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{builtin, BehaviorRegistry, Engine, RunOutcome, TraceSink};
use prov_model::Value;

// ---------------------------------------------------------------------
// KEGG substitute
// ---------------------------------------------------------------------

/// A deterministic synthetic KEGG: every gene maps to a set of pathways
/// drawn from a fixed pool. Pathway 0 is universal, so intersections over
/// gene lists are never empty (the GK workflow's `commonPathways` output
/// stays non-trivial).
#[derive(Debug)]
pub struct KeggDb {
    pathways: Vec<(String, String)>, // (id, human-readable name)
    per_gene: usize,
    seed: u64,
}

const PATHWAY_NAMES: [&str; 12] = [
    "MAPK signaling",
    "VEGF signaling",
    "Apoptosis",
    "Toll-like receptor",
    "Cell cycle",
    "p53 signaling",
    "Wnt signaling",
    "mTOR signaling",
    "Notch signaling",
    "Calcium signaling",
    "JAK-STAT signaling",
    "Insulin signaling",
];

impl KeggDb {
    /// A database with `n_pathways` pathways (≥ 1), seeded deterministic.
    pub fn new(seed: u64, n_pathways: usize, per_gene: usize) -> Self {
        let n = n_pathways.max(1);
        let pathways = (0..n)
            .map(|i| {
                (
                    format!("path:{:05}", 4010 + i * 10),
                    PATHWAY_NAMES[i % PATHWAY_NAMES.len()].to_string(),
                )
            })
            .collect();
        KeggDb { pathways, per_gene: per_gene.max(1), seed }
    }

    /// A small default instance.
    pub fn small(seed: u64) -> Self {
        KeggDb::new(seed, 8, 3)
    }

    /// The pathway IDs a gene participates in (always includes pathway 0).
    pub fn pathways_of(&self, gene: &str) -> Vec<String> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ fxhash(gene));
        let mut out = vec![self.pathways[0].0.clone()];
        for _ in 1..self.per_gene {
            let k = rng.gen_range(1..self.pathways.len().max(2));
            let id = self.pathways[k % self.pathways.len()].0.clone();
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out.sort();
        out
    }

    /// Pathways in which **all** the given genes are involved — the per-
    /// list retrieval of Fig. 1 ("pathways in which all of the genes in
    /// each of the lists are involved").
    pub fn pathways_common_to(&self, genes: &[&str]) -> Vec<String> {
        let mut iter = genes.iter();
        let Some(first) = iter.next() else { return Vec::new() };
        let mut acc = self.pathways_of(first);
        for g in iter {
            let ps = self.pathways_of(g);
            acc.retain(|p| ps.contains(p));
        }
        acc
    }

    /// Human-readable description, e.g. `path:04010 MAPK signaling`.
    pub fn description(&self, pathway_id: &str) -> String {
        let name = self
            .pathways
            .iter()
            .find(|(id, _)| id == pathway_id)
            .map(|(_, n)| n.as_str())
            .unwrap_or("unknown pathway");
        format!("{pathway_id} {name}")
    }
}

/// A tiny deterministic string hash (FNV-1a) for seeding per-key RNGs.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// GK — genes2Kegg (Fig. 1)
// ---------------------------------------------------------------------

/// Builds the GK workflow. Shape, port names, and collection structure
/// follow Fig. 1:
///
/// * input `list_of_geneIDList : list(list(string))`;
/// * left branch — `get_pathways_by_genes` (declared `list(string)` input,
///   so the nested input iterates **per sub-list**) then
///   `getPathwayDescriptions`; output `paths_per_gene`;
/// * right branch — `merge_gene_lists` (flatten, consumes the whole nested
///   list), `get_pathways_by_genes_2`, `getPathwayDescriptions_2`; output
///   `commonPathways`.
pub fn genes2kegg_workflow() -> Dataflow {
    let mut b = DataflowBuilder::new("genes2Kegg");
    b.input("list_of_geneIDList", PortType::nested(BaseType::String, 2));

    // Left branch: per-sublist pathways.
    b.processor_with_behavior("get_pathways_by_genes", "kegg_pathways_by_genes")
        .in_port("genes_id_list", PortType::list(BaseType::String))
        .out_port("return", PortType::list(BaseType::String));
    b.arc_from_input("list_of_geneIDList", "get_pathways_by_genes", "genes_id_list").unwrap();
    b.processor_with_behavior("getPathwayDescriptions", "kegg_describe")
        .in_port("string", PortType::list(BaseType::String))
        .out_port("return", PortType::list(BaseType::String));
    b.arc("get_pathways_by_genes", "return", "getPathwayDescriptions", "string").unwrap();
    b.output("paths_per_gene", PortType::nested(BaseType::String, 2));
    b.arc_to_output("getPathwayDescriptions", "return", "paths_per_gene").unwrap();

    // Right branch: flatten, then pathways common to ALL genes.
    b.processor_with_behavior("merge_gene_lists", "flatten")
        .in_port("lists", PortType::nested(BaseType::String, 2))
        .out_port("merged", PortType::list(BaseType::String));
    b.arc_from_input("list_of_geneIDList", "merge_gene_lists", "lists").unwrap();
    b.processor_with_behavior("get_pathways_by_genes_2", "kegg_pathways_by_genes")
        .in_port("genes_id_list", PortType::list(BaseType::String))
        .out_port("return", PortType::list(BaseType::String));
    b.arc("merge_gene_lists", "merged", "get_pathways_by_genes_2", "genes_id_list").unwrap();
    b.processor_with_behavior("getPathwayDescriptions_2", "kegg_describe")
        .in_port("string", PortType::list(BaseType::String))
        .out_port("return", PortType::list(BaseType::String));
    b.arc("get_pathways_by_genes_2", "return", "getPathwayDescriptions_2", "string").unwrap();
    b.output("commonPathways", PortType::list(BaseType::String));
    b.arc_to_output("getPathwayDescriptions_2", "return", "commonPathways").unwrap();

    b.build().expect("GK is a valid workflow")
}

/// The behaviours GK needs, bound to a [`KeggDb`].
pub fn genes2kegg_registry(db: Arc<KeggDb>) -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new().with_builtins();
    let db2 = Arc::clone(&db);
    r.register_fn("kegg_pathways_by_genes", move |inputs| {
        let genes: Vec<&str> = inputs[0]
            .as_list()
            .ok_or("expected a gene list")?
            .iter()
            .map(|v| v.as_atom().and_then(prov_model::Atom::as_str).ok_or("gene ids are strings"))
            .collect::<std::result::Result<_, _>>()?;
        Ok(vec![Value::List(db.pathways_common_to(&genes).into_iter().map(Value::from).collect())])
    });
    r.register_fn("kegg_describe", move |inputs| {
        let ids = inputs[0].as_list().ok_or("expected a pathway id list")?;
        let described: Vec<Value> = ids
            .iter()
            .map(|v| {
                let id = v.as_atom().and_then(prov_model::Atom::as_str).unwrap_or("?");
                Value::from(db2.description(id))
            })
            .collect();
        Ok(vec![Value::List(described)])
    });
    r
}

/// A deterministic nested gene-ID input: `n_lists` sub-lists of
/// `genes_per_list` mouse-style gene IDs.
pub fn sample_gene_lists(n_lists: usize, genes_per_list: usize, seed: u64) -> Value {
    let mut rng = SmallRng::seed_from_u64(seed);
    Value::List(
        (0..n_lists)
            .map(|_| {
                Value::List(
                    (0..genes_per_list)
                        .map(|_| Value::from(format!("mmu:{}", rng.gen_range(10_000..99_999))))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Runs GK once on the given input.
pub fn run_genes2kegg(
    df: &Dataflow,
    db: Arc<KeggDb>,
    input: Value,
    sink: &dyn TraceSink,
) -> RunOutcome {
    Engine::new(genes2kegg_registry(db))
        .execute(df, vec![("list_of_geneIDList".into(), input)], sink)
        .expect("GK runs are valid")
}

// ---------------------------------------------------------------------
// PubMed substitute
// ---------------------------------------------------------------------

/// A deterministic synthetic PubMed: abstracts with IDs `PMID:n`, each a
/// bag of filler words plus a few protein mentions from a fixed lexicon.
#[derive(Debug)]
pub struct PubMedCorpus {
    abstracts: Vec<(String, String)>,    // (id, text)
    index: HashMap<String, Vec<String>>, // term → abstract ids
}

const PROTEINS: [&str; 10] =
    ["p53", "BRCA1", "EGFR", "AKT1", "TNF", "VEGFA", "MYC", "KRAS", "TP63", "PTEN"];
const FILLER: [&str; 12] = [
    "study",
    "cells",
    "binding",
    "expression",
    "analysis",
    "pathway",
    "tumor",
    "signal",
    "response",
    "levels",
    "patients",
    "assay",
];

impl PubMedCorpus {
    /// A corpus of `n_abstracts` abstracts, seeded deterministic.
    pub fn new(seed: u64, n_abstracts: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut abstracts = Vec::with_capacity(n_abstracts);
        let mut index: HashMap<String, Vec<String>> = HashMap::new();
        for n in 0..n_abstracts {
            let id = format!("PMID:{}", 100_000 + n);
            let mut words = Vec::new();
            for _ in 0..rng.gen_range(8..16) {
                words.push(FILLER[rng.gen_range(0..FILLER.len())]);
            }
            let mentions = rng.gen_range(1..4);
            for _ in 0..mentions {
                let p = PROTEINS[rng.gen_range(0..PROTEINS.len())];
                words.push(p);
                index.entry(p.to_lowercase()).or_default().push(id.clone());
            }
            // Index every filler word too, so term search is meaningful.
            for w in &words {
                let key = w.to_lowercase();
                let entry = index.entry(key).or_default();
                if entry.last() != Some(&id) {
                    entry.push(id.clone());
                }
            }
            abstracts.push((id, words.join(" ")));
        }
        PubMedCorpus { abstracts, index }
    }

    /// IDs of abstracts mentioning `term` (case-insensitive), capped.
    pub fn search(&self, term: &str, cap: usize) -> Vec<String> {
        self.index
            .get(&term.to_lowercase())
            .map(|ids| ids.iter().take(cap).cloned().collect())
            .unwrap_or_default()
    }

    /// The text of an abstract.
    pub fn fetch(&self, id: &str) -> Option<&str> {
        self.abstracts.iter().find(|(i, _)| i == id).map(|(_, t)| t.as_str())
    }

    /// The protein lexicon the PD workflow matches against.
    pub fn protein_lexicon() -> Vec<&'static str> {
        PROTEINS.to_vec()
    }

    /// Number of abstracts.
    pub fn len(&self) -> usize {
        self.abstracts.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.abstracts.is_empty()
    }
}

// ---------------------------------------------------------------------
// PD — protein discovery
// ---------------------------------------------------------------------

/// Builds the PD workflow: a long pipeline (the paper's "longer
/// workflow"). `pad` extra one-to-one text-processing stages stretch the
/// provenance paths (default used in the experiments: 20, for ~28 nodes).
///
/// ```text
/// query_terms ─ expand ─ search ─ flatten ─ dedup ─ fetch ─ [pad stages]
///   ─ extract_terms ─ flatten ─ dedup ─ filter_proteins → protein_terms
/// ```
pub fn protein_discovery_workflow(pad: usize) -> Dataflow {
    let mut b = DataflowBuilder::new("protein_discovery");
    b.input("query_terms", PortType::list(BaseType::String));

    b.processor_with_behavior("expand_query", "pd_expand")
        .in_port("term", PortType::atom(BaseType::String))
        .out_port("expanded", PortType::atom(BaseType::String));
    b.arc_from_input("query_terms", "expand_query", "term").unwrap();

    b.processor_with_behavior("search_pubmed", "pd_search")
        .in_port("term", PortType::atom(BaseType::String))
        .out_port("ids", PortType::list(BaseType::String));
    b.arc("expand_query", "expanded", "search_pubmed", "term").unwrap();

    b.processor_with_behavior("flatten_ids", "flatten")
        .in_port("xss", PortType::nested(BaseType::String, 2))
        .out_port("xs", PortType::list(BaseType::String));
    b.arc("search_pubmed", "ids", "flatten_ids", "xss").unwrap();

    b.processor_with_behavior("dedup_ids", "dedup")
        .in_port("xs", PortType::list(BaseType::String))
        .out_port("ys", PortType::list(BaseType::String));
    b.arc("flatten_ids", "xs", "dedup_ids", "xs").unwrap();

    b.processor_with_behavior("fetch_abstract", "pd_fetch")
        .in_port("id", PortType::atom(BaseType::String))
        .out_port("text", PortType::atom(BaseType::String));
    b.arc("dedup_ids", "ys", "fetch_abstract", "id").unwrap();

    let mut prev = ("fetch_abstract".to_string(), "text");
    for i in 0..pad {
        let name = format!("text_stage_{i}");
        b.processor_with_behavior(&name, "pd_text_stage")
            .in_port("t", PortType::atom(BaseType::String))
            .out_port("t", PortType::atom(BaseType::String));
        b.arc(&prev.0, prev.1, &name, "t").unwrap();
        prev = (name, "t");
    }

    b.processor_with_behavior("extract_terms", "pd_extract")
        .in_port("text", PortType::atom(BaseType::String))
        .out_port("terms", PortType::list(BaseType::String));
    b.arc(&prev.0, prev.1, "extract_terms", "text").unwrap();

    b.processor_with_behavior("flatten_terms", "flatten")
        .in_port("xss", PortType::nested(BaseType::String, 2))
        .out_port("xs", PortType::list(BaseType::String));
    b.arc("extract_terms", "terms", "flatten_terms", "xss").unwrap();

    b.processor_with_behavior("dedup_terms", "dedup")
        .in_port("xs", PortType::list(BaseType::String))
        .out_port("ys", PortType::list(BaseType::String));
    b.arc("flatten_terms", "xs", "dedup_terms", "xs").unwrap();

    b.processor_with_behavior("filter_proteins", "pd_filter")
        .in_port("terms", PortType::list(BaseType::String))
        .out_port("proteins", PortType::list(BaseType::String));
    b.arc("dedup_terms", "ys", "filter_proteins", "terms").unwrap();

    b.output("protein_terms", PortType::list(BaseType::String));
    b.arc_to_output("filter_proteins", "proteins", "protein_terms").unwrap();

    b.build().expect("PD is a valid workflow")
}

/// The behaviours PD needs, bound to a [`PubMedCorpus`].
pub fn protein_discovery_registry(corpus: Arc<PubMedCorpus>) -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new().with_builtins();
    r.register_fn("pd_expand", |inputs| {
        let t = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::from(t.trim().to_lowercase())])
    });
    let c1 = Arc::clone(&corpus);
    r.register_fn("pd_search", move |inputs| {
        let t = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::List(c1.search(t, 5).into_iter().map(Value::from).collect())])
    });
    let c2 = Arc::clone(&corpus);
    r.register_fn("pd_fetch", move |inputs| {
        let id = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::from(c2.fetch(id).unwrap_or("").to_string())])
    });
    r.register_fn("pd_text_stage", |inputs| {
        // Cheap, lossless text normalisation: collapse whitespace.
        let t = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::from(t.split_whitespace().collect::<Vec<_>>().join(" "))])
    });
    r.register_fn("pd_extract", |inputs| {
        let t = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::List(t.split_whitespace().map(Value::str).collect())])
    });
    r.register_fn("pd_filter", |inputs| {
        let lexicon: Vec<String> =
            PubMedCorpus::protein_lexicon().iter().map(|p| p.to_lowercase()).collect();
        let terms = inputs[0].as_list().ok_or("expected a term list")?;
        let kept: Vec<Value> = terms
            .iter()
            .filter(|v| {
                v.as_atom()
                    .and_then(prov_model::Atom::as_str)
                    .map(|s| lexicon.contains(&s.to_lowercase()))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        Ok(vec![Value::List(kept)])
    });
    r
}

/// Runs PD once on the given query terms.
pub fn run_protein_discovery(
    df: &Dataflow,
    corpus: Arc<PubMedCorpus>,
    terms: Vec<&str>,
    sink: &dyn TraceSink,
) -> RunOutcome {
    Engine::new(protein_discovery_registry(corpus))
        .execute(
            df,
            vec![("query_terms".into(), Value::List(terms.into_iter().map(Value::str).collect()))],
            sink,
        )
        .expect("PD runs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::{IndexProj, LineageQuery, NaiveLineage};
    use prov_model::{Index, PortRef, ProcessorName};
    use prov_store::TraceStore;

    #[test]
    fn kegg_is_deterministic_and_universal_pathway_holds() {
        let db = KeggDb::small(7);
        let a = db.pathways_of("mmu:20816");
        let b = db.pathways_of("mmu:20816");
        assert_eq!(a, b);
        assert!(a.contains(&"path:04010".to_string()));
        let common = db.pathways_common_to(&["mmu:20816", "mmu:26416", "mmu:328788"]);
        assert!(common.contains(&"path:04010".to_string()));
    }

    #[test]
    fn kegg_description_has_paper_format() {
        let db = KeggDb::small(7);
        assert_eq!(db.description("path:04010"), "path:04010 MAPK signaling");
        assert!(db.description("path:99999").contains("unknown"));
    }

    #[test]
    fn gk_produces_per_sublist_and_common_outputs() {
        let df = genes2kegg_workflow();
        let db = Arc::new(KeggDb::small(7));
        let store = TraceStore::in_memory();
        let input = sample_gene_lists(2, 2, 3);
        let out = run_genes2kegg(&df, db, input, &store);
        let per = out.output("paths_per_gene").unwrap();
        assert_eq!(per.depth().unwrap(), 2);
        assert_eq!(per.len(), 2); // one sub-list per input gene list
        let common = out.output("commonPathways").unwrap();
        assert_eq!(common.depth().unwrap(), 1);
        assert!(!common.is_empty()); // the universal pathway at least
                                     // Descriptions look like "path:04010 MAPK signaling".
        let first = common.as_list().unwrap()[0].as_atom().unwrap().as_str().unwrap();
        assert!(first.starts_with("path:0"));
        assert!(first.contains(' '));
    }

    #[test]
    fn gk_fine_grained_lineage_matches_paper_claim() {
        // "the pathways in sub-list i in paths_per_gene depend only on the
        // genes in the corresponding sub-list i" — and both algorithms
        // agree on it.
        let df = genes2kegg_workflow();
        let db = Arc::new(KeggDb::small(7));
        let store = TraceStore::in_memory();
        let input = sample_gene_lists(3, 2, 3);
        let run = run_genes2kegg(&df, db, input.clone(), &store).run_id;

        for i in 0..3u32 {
            let q = LineageQuery::focused(
                PortRef::new("genes2Kegg", "paths_per_gene"),
                Index::single(i),
                [ProcessorName::from("genes2Kegg")],
            );
            let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
            let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
            assert!(ni.same_bindings(&ip));
            // Exactly the genes of sub-list i (2 atoms).
            assert_eq!(ni.bindings.len(), 2, "{ni}");
            for b in &ni.bindings {
                assert!(Index::single(i).is_prefix_of(&b.index));
            }
        }

        // While commonPathways depends on ALL input genes.
        let q = LineageQuery::focused(
            PortRef::new("genes2Kegg", "commonPathways"),
            Index::single(0),
            [ProcessorName::from("genes2Kegg")],
        );
        let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
        assert!(ni.same_bindings(&ip));
        assert_eq!(ni.bindings.len(), 6); // 3 lists × 2 genes
    }

    #[test]
    fn corpus_search_and_fetch_are_consistent() {
        let c = PubMedCorpus::new(11, 40);
        assert_eq!(c.len(), 40);
        let hits = c.search("p53", 5);
        assert!(hits.len() <= 5);
        for id in &hits {
            let text = c.fetch(id).unwrap();
            assert!(text.to_lowercase().contains("p53"), "{id}: {text}");
        }
        assert!(c.search("no-such-term", 5).is_empty());
        assert!(c.fetch("PMID:1").is_none());
    }

    #[test]
    fn pd_finds_proteins_and_algorithms_agree() {
        let df = protein_discovery_workflow(6);
        let corpus = Arc::new(PubMedCorpus::new(11, 40));
        let store = TraceStore::in_memory();
        let out = run_protein_discovery(&df, corpus, vec!["p53", "tumor"], &store);
        let proteins = out.output("protein_terms").unwrap();
        assert!(!proteins.is_empty());

        let q = LineageQuery::focused(
            PortRef::new("protein_discovery", "protein_terms"),
            Index::single(0),
            [ProcessorName::from("protein_discovery")],
        );
        let ni = NaiveLineage::new().run(&store, out.run_id, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, out.run_id, &q).unwrap();
        assert!(ni.same_bindings(&ip));
        assert!(!ni.bindings.is_empty());
    }

    #[test]
    fn pd_is_much_longer_than_gk() {
        let gk = genes2kegg_workflow();
        let pd = protein_discovery_workflow(20);
        assert!(pd.node_count() > 4 * gk.node_count());
    }

    #[test]
    fn sample_gene_lists_is_deterministic() {
        assert_eq!(sample_gene_lists(2, 3, 5), sample_gene_lists(2, 3, 5));
        let v = sample_gene_lists(2, 3, 5);
        assert_eq!(v.depth().unwrap(), 2);
        assert_eq!(v.atom_count(), 6);
    }
}
