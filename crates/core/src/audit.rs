//! Trace auditing: checks that a stored trace is consistent with its
//! workflow specification and with the iteration semantics.
//!
//! INDEXPROJ's correctness rests on Prop. 1 holding for every *xform*
//! event; the paper proves it for traces the model generates, but a
//! production provenance system also ingests traces from the wild (older
//! engine versions, partial recoveries, foreign tools). The auditor
//! re-derives the proposition per event and reports violations, making the
//! trust boundary explicit:
//!
//! * **index law** — an event's output index `q` must equal the
//!   concatenation of its per-port input indices (Prop. 1);
//! * **fragment lengths** — each input index must have exactly
//!   `max(δ_s(X_i), 0)` components (per Algorithm 1 on the spec graph);
//! * **dangling transfers** — an xfer source naming a processor output
//!   must be covered by some producing xform event.

use std::collections::HashMap;
use std::fmt;

use prov_dataflow::{Dataflow, DepthInfo};
use prov_model::{Index, ProcessorName, RunId};
use prov_store::TraceStore;

use crate::{CoreError, Result};

/// One inconsistency found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// Prop. 1 failed: `q ≠ p1 · … · pn`.
    IndexLaw {
        /// Offending processor.
        processor: ProcessorName,
        /// Invocation ordinal.
        invocation: u32,
        /// The concatenation of the input indices.
        expected: Index,
        /// The recorded output index.
        found: Index,
    },
    /// An input index has the wrong number of components for its port's
    /// static mismatch.
    FragmentLength {
        /// Offending processor.
        processor: ProcessorName,
        /// Offending port.
        port: String,
        /// `max(δ_s, 0)` from Algorithm 1.
        expected: usize,
        /// Recorded index length.
        found: usize,
    },
    /// An xfer claims a source binding no xform produced.
    DanglingTransfer {
        /// The unproduced source, rendered `P:Y[p]`.
        source: String,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::IndexLaw { processor, invocation, expected, found } => write!(
                f,
                "{processor} invocation {invocation}: output index {found} ≠ concatenated input indices {expected}"
            ),
            AuditViolation::FragmentLength { processor, port, expected, found } => write!(
                f,
                "{processor}:{port}: input index has {found} components, static mismatch implies {expected}"
            ),
            AuditViolation::DanglingTransfer { source } => {
                write!(f, "xfer from {source} has no producing xform event")
            }
        }
    }
}

/// Result of auditing one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// The audited run.
    pub run: RunId,
    /// Number of xform events checked against the specification.
    pub xforms_checked: usize,
    /// Number of xfer events checked.
    pub xfers_checked: usize,
    /// Events whose processor appears nowhere in the (recursively
    /// traversed) specification — left unchecked.
    pub foreign_events: usize,
    /// Everything found wrong.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the trace passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} xforms, {} xfers checked ({} foreign) — {}",
            self.run,
            self.xforms_checked,
            self.xfers_checked,
            self.foreign_events,
            if self.is_clean() { "clean" } else { "VIOLATIONS" }
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// The statically expected index structure of one (possibly nested-scope)
/// task processor: its total iteration depth and per-port fragments.
struct IndexContract {
    total: usize,
    /// Per input port: `(name, offset, len)` within the iteration index.
    ports: Vec<(String, usize, usize)>,
}

/// Recursively collects the index contracts of every task processor,
/// keyed by scope-qualified name, descending into nested dataflows.
fn collect_contracts(
    df: &Dataflow,
    prefix: &str,
    out: &mut HashMap<ProcessorName, IndexContract>,
) -> Result<()> {
    let depths = DepthInfo::compute(df)?;
    for p in &df.processors {
        let qualified = if prefix.is_empty() {
            p.name.clone()
        } else {
            ProcessorName::from(format!("{prefix}{}", p.name).as_str())
        };
        match &p.kind {
            prov_dataflow::ProcessorKind::Task { .. } => {
                let layout = depths.layout_of(&p.name).ok_or_else(|| {
                    CoreError::Dataflow(prov_dataflow::DataflowError::UnknownProcessor(
                        p.name.to_string(),
                    ))
                })?;
                out.insert(
                    qualified,
                    IndexContract {
                        total: layout.total,
                        ports: p
                            .inputs
                            .iter()
                            .enumerate()
                            .map(|(i, port)| {
                                let (off, len) = layout.fragment_of(i);
                                (port.name.to_string(), off, len)
                            })
                            .collect(),
                    },
                );
            }
            prov_dataflow::ProcessorKind::Nested { dataflow } => {
                let inner_prefix = format!("{prefix}{}/", p.name);
                collect_contracts(dataflow, &inner_prefix, out)?;
            }
        }
    }
    Ok(())
}

/// Audits one run against its workflow specification (descending into
/// nested sub-workflows).
pub fn audit_run(df: &Dataflow, store: &TraceStore, run: RunId) -> Result<AuditReport> {
    let mut contracts = HashMap::new();
    collect_contracts(df, "", &mut contracts)?;
    let mut report = AuditReport {
        run,
        xforms_checked: 0,
        xfers_checked: 0,
        foreign_events: 0,
        violations: Vec::new(),
    };

    // Per (processor, output port): the output indices seen, for the
    // dangling-transfer check.
    let mut produced: HashMap<(ProcessorName, String), Vec<Index>> = HashMap::new();

    for rec in store.xforms_of_run(run) {
        report.xforms_checked += 1;
        for out in rec.outputs() {
            produced
                .entry((rec.processor.clone(), out.port.to_string()))
                .or_default()
                .push(out.index.clone());
        }
        let Some(contract) = contracts.get(&rec.processor) else {
            report.foreign_events += 1;
            continue;
        };

        // Recover the scope's global prefix G from the output index: every
        // recorded index is G · (relative index), and the relative output
        // index has exactly `total` components.
        let out_index = match rec.outputs().next() {
            Some(o) => o.index.clone(),
            None => continue,
        };
        if out_index.len() < contract.total {
            report.violations.push(AuditViolation::IndexLaw {
                processor: rec.processor.clone(),
                invocation: rec.invocation,
                expected: Index::empty(),
                found: out_index.clone(),
            });
            continue;
        }
        let g_len = out_index.len() - contract.total;
        let global = out_index.prefix(g_len);
        let q_rel = out_index.project(g_len, contract.total);

        // Each input index must be exactly G (whole-value ports) or
        // G · (its fragment of q_rel) — Prop. 1 with the nesting offset.
        for (port, off, len) in &contract.ports {
            let Some(input) = rec.input(port) else { continue };
            let expected =
                if *len == 0 { global.clone() } else { global.concat(&q_rel.project(*off, *len)) };
            if input.index != expected {
                if input.index.len() != expected.len() {
                    report.violations.push(AuditViolation::FragmentLength {
                        processor: rec.processor.clone(),
                        port: port.clone(),
                        expected: expected.len(),
                        found: input.index.len(),
                    });
                } else {
                    report.violations.push(AuditViolation::IndexLaw {
                        processor: rec.processor.clone(),
                        invocation: rec.invocation,
                        expected: expected.clone(),
                        found: input.index.clone(),
                    });
                }
            }
        }
    }

    // Dangling transfers: xfer sources on processor output ports must be
    // covered by a produced index (prefix-overlap; per-element transfers
    // are finer than the invocation-level xform indices). Workflow-scope
    // sources (the workflow name or nested scope names, which never have
    // xform events) are exempt.
    let workflow_scope = |p: &ProcessorName| {
        p == &df.name
            || df
                .processor(p)
                .map(|s| matches!(s.kind, prov_dataflow::ProcessorKind::Nested { .. }))
                .unwrap_or(true)
    };
    for rec in store.xfers_of_run(run) {
        report.xfers_checked += 1;
        if workflow_scope(&rec.src_processor) {
            continue;
        }
        let covered = produced
            .get(&(rec.src_processor.clone(), rec.src_port.to_string()))
            .map(|indices| {
                indices
                    .iter()
                    .any(|q| q.is_prefix_of(&rec.src_index) || rec.src_index.is_prefix_of(q))
            })
            .unwrap_or(false);
        if !covered {
            report.violations.push(AuditViolation::DanglingTransfer {
                source: format!("{}:{}{}", rec.src_processor, rec.src_port, rec.src_index),
            });
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_engine::{BehaviorRegistry, Engine, PortBinding, TraceSink, XformEvent};
    use prov_model::{PortRef, Value};

    fn join_workflow() -> (Dataflow, BehaviorRegistry) {
        let mut b = DataflowBuilder::new("wf");
        b.input("a", PortType::list(BaseType::String));
        b.input("b", PortType::list(BaseType::String));
        b.processor_with_behavior("J", "pair")
            .in_port("x", PortType::atom(BaseType::String))
            .in_port("y", PortType::atom(BaseType::String))
            .out_port("z", PortType::atom(BaseType::String));
        b.arc_from_input("a", "J", "x").unwrap();
        b.arc_from_input("b", "J", "y").unwrap();
        b.output("out", PortType::nested(BaseType::String, 2));
        b.arc_to_output("J", "z", "out").unwrap();
        let mut r = BehaviorRegistry::new().with_builtins();
        r.register_fn("pair", |inputs: &[Value]| {
            Ok(vec![Value::str(&format!("{}{}", inputs[0], inputs[1]))])
        });
        (b.build().unwrap(), r)
    }

    #[test]
    fn engine_generated_traces_audit_clean() {
        let (df, reg) = join_workflow();
        let store = TraceStore::in_memory();
        let run = Engine::new(reg)
            .execute(
                &df,
                vec![
                    ("a".into(), Value::from(vec!["a0", "a1"])),
                    ("b".into(), Value::from(vec!["b0", "b1", "b2"])),
                ],
                &store,
            )
            .unwrap()
            .run_id;
        let report = audit_run(&df, &store, run).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.xforms_checked, 6);
        assert_eq!(report.foreign_events, 0);
    }

    #[test]
    fn nested_traces_audit_clean_with_foreign_events() {
        use std::sync::Arc;
        let mut inner = DataflowBuilder::new("inner");
        inner.input("p", PortType::atom(BaseType::String));
        inner
            .processor_with_behavior("T", "string_upper")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        inner.arc_from_input("p", "T", "x").unwrap();
        inner.output("q", PortType::atom(BaseType::String));
        inner.arc_to_output("T", "y", "q").unwrap();
        let inner = Arc::new(inner.build().unwrap());

        let mut outer = DataflowBuilder::new("outer");
        outer.input("xs", PortType::list(BaseType::String));
        outer.nested("sub", inner);
        outer.arc_from_input("xs", "sub", "p").unwrap();
        outer.output("ys", PortType::list(BaseType::String));
        outer.arc_to_output("sub", "q", "ys").unwrap();
        let df = outer.build().unwrap();

        let store = TraceStore::in_memory();
        let run = Engine::new(BehaviorRegistry::new().with_builtins())
            .execute(&df, vec![("xs".into(), Value::from(vec!["u", "v"]))], &store)
            .unwrap()
            .run_id;
        let report = audit_run(&df, &store, run).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.foreign_events, 0); // sub/T has a contract too
    }

    #[test]
    fn corrupted_output_index_is_flagged() {
        let (df, _) = join_workflow();
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        // Hand-craft an event violating Prop. 1: q should be [0]·[1].
        store.record_xform(
            run,
            XformEvent {
                processor: ProcessorName::from("J"),
                invocation: 0,
                inputs: vec![
                    PortBinding::new("x", Index::single(0), Value::str("a0")),
                    PortBinding::new("y", Index::single(1), Value::str("b1")),
                ],
                outputs: vec![PortBinding::new(
                    "z",
                    Index::from_slice(&[1, 0]), // swapped!
                    Value::str("a0b1"),
                )],
            },
        );
        let report = audit_run(&df, &store, run).unwrap();
        // Both input ports disagree with the recorded output index.
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().all(|v| matches!(v, AuditViolation::IndexLaw { .. })));
        assert!(report.to_string().contains("VIOLATIONS"));
    }

    #[test]
    fn wrong_fragment_length_is_flagged() {
        let (df, _) = join_workflow();
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        store.record_xform(
            run,
            XformEvent {
                processor: ProcessorName::from("J"),
                invocation: 0,
                inputs: vec![
                    // δ_s(x) = 1, but a 2-component index was recorded.
                    PortBinding::new("x", Index::from_slice(&[0, 0]), Value::str("a0")),
                    PortBinding::new("y", Index::single(0), Value::str("b0")),
                ],
                outputs: vec![PortBinding::new("z", Index::from_slice(&[0, 0]), Value::str("v"))],
            },
        );
        let report = audit_run(&df, &store, run).unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, AuditViolation::FragmentLength { found: 2, expected: 1, .. })),
            "{report}"
        );
    }

    #[test]
    fn dangling_transfer_is_flagged() {
        let (df, _) = join_workflow();
        let store = TraceStore::in_memory();
        let run = store.begin_run(&"wf".into());
        // An xfer from J:z[5,5] with no xform producing it.
        store.record_xfer(
            run,
            prov_engine::XferEvent {
                src: PortRef::new("J", "z"),
                src_index: Index::from_slice(&[5, 5]),
                dst: PortRef::new("wf", "out"),
                dst_index: Index::from_slice(&[5, 5]),
                value: Value::str("ghost"),
            },
        );
        let report = audit_run(&df, &store, run).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], AuditViolation::DanglingTransfer { .. }));
        // Workflow-scope sources are exempt.
        store.record_xfer(
            run,
            prov_engine::XferEvent {
                src: PortRef::new("wf", "a"),
                src_index: Index::single(0),
                dst: PortRef::new("J", "x"),
                dst_index: Index::single(0),
                value: Value::str("a0"),
            },
        );
        let report = audit_run(&df, &store, run).unwrap();
        assert_eq!(report.violations.len(), 1);
    }
}
