//! Scoped-thread fan-out for plan execution.
//!
//! The lookups of a compiled [`crate::LineagePlan`] are independent of one
//! another — each reads its own `(processor, port, index)` region of the
//! trace — and so are the per-run executions of a multi-run query (§3.4):
//! the plan is shared, the runs are not. Both therefore parallelise
//! embarrassingly. This module provides the one primitive both paths use:
//! an order-preserving parallel map over a slice, built on
//! [`std::thread::scope`] so borrowed stores and plans cross into workers
//! without `'static` gymnastics.
//!
//! Fan-out only pays for itself above a minimum amount of work; callers
//! gate on [`STEP_FANOUT_MIN`] / [`RUN_FANOUT_MIN`] and fall back to the
//! sequential loop below them. Answers stay bit-identical either way:
//! results are reassembled in input order, and
//! [`crate::LineageAnswer::new`] normalises binding order regardless.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Minimum number of plan steps before [`crate::LineagePlan::execute`]
/// fans lookups out across threads.
pub(crate) const STEP_FANOUT_MIN: usize = 16;

/// Minimum number of runs before the multi-run paths execute runs
/// concurrently.
pub(crate) const RUN_FANOUT_MIN: usize = 4;

/// Number of worker threads for `items` units of work: the machine's
/// available parallelism, but at least 2 (so the concurrent path is
/// genuinely exercised even on single-core hosts) and at most 8 (trace
/// lookups are short; more threads only add contention), never more than
/// there are items.
fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.clamp(2, 8).min(items.max(1))
}

/// Applies `f` to every item on scoped worker threads and returns the
/// results in input order. Work is distributed by an atomic cursor, so
/// uneven item costs balance across workers.
pub(crate) fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..worker_count(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                out.lock().push((i, r));
            });
        }
    });
    let mut pairs = out.into_inner();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |&i| i).is_empty());
        assert_eq!(parallel_map(&[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        // With enough slow items, at least two workers must participate.
        let items: Vec<u32> = (0..64).collect();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        parallel_map(&items, |_| {
            seen.lock().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().len() >= 2, "fan-out used a single thread");
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(100) >= 2);
        assert!(worker_count(100) <= 8);
    }
}
