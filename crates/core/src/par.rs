//! Scoped-thread fan-out for plan execution.
//!
//! The lookups of a compiled [`crate::LineagePlan`] are independent of one
//! another — each reads its own `(processor, port, index)` region of the
//! trace — and so are the per-run executions of a multi-run query (§3.4):
//! the plan is shared, the runs are not. Both therefore parallelise
//! embarrassingly. This module provides the one primitive both paths use:
//! an order-preserving parallel map over a slice, built on
//! [`std::thread::scope`] so borrowed stores and plans cross into workers
//! without `'static` gymnastics.
//!
//! Fan-out only pays for itself above a minimum amount of work; callers
//! gate on [`STEP_FANOUT_MIN`] / [`RUN_FANOUT_MIN`] and fall back to the
//! sequential loop below them. Answers stay bit-identical either way:
//! results are reassembled in input order, and
//! [`crate::LineageAnswer::new`] normalises binding order regardless.
//!
//! The worker pool size is the machine's available parallelism clamped to
//! `2..=8` by default, overridable per process with the
//! `TPROV_QUERY_THREADS` environment variable (validated; `1` disables
//! fan-out entirely) and per call site with [`set_query_threads`] (used by
//! benchmarks to sweep a scaling matrix).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum number of plan steps before [`crate::LineagePlan::execute`]
/// fans lookups out across threads.
pub(crate) const STEP_FANOUT_MIN: usize = 16;

/// Minimum number of runs before the multi-run paths execute runs
/// concurrently.
pub(crate) const RUN_FANOUT_MIN: usize = 4;

/// Upper bound accepted for `TPROV_QUERY_THREADS` / [`set_query_threads`].
/// Trace lookups are short; anything beyond this only adds scheduling
/// noise, and a typo like `TPROV_QUERY_THREADS=8000` should be rejected
/// rather than spawn thousands of threads.
pub const MAX_QUERY_THREADS: usize = 256;

/// Process-wide programmatic override of the worker pool size (`0` =
/// unset). Takes precedence over the environment variable.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the query worker pool size for this process (benchmarks use
/// this to sweep thread counts without re-exec'ing); `None` restores the
/// default resolution (`TPROV_QUERY_THREADS`, else the hardware clamp).
/// Values are clamped into `1..=MAX_QUERY_THREADS`.
pub fn set_query_threads(n: Option<usize>) {
    let v = n.map(|n| n.clamp(1, MAX_QUERY_THREADS)).unwrap_or(0);
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Parses a `TPROV_QUERY_THREADS` value: an integer in
/// `1..=`[`MAX_QUERY_THREADS`]. Anything else is invalid (and ignored with
/// a warning rather than panicking a query path).
fn parse_thread_cap(raw: &str) -> Option<usize> {
    let n: usize = raw.trim().parse().ok()?;
    (1..=MAX_QUERY_THREADS).contains(&n).then_some(n)
}

/// The validated `TPROV_QUERY_THREADS` setting, read and parsed once per
/// process. Invalid values warn on stderr and fall back to the default.
fn env_thread_cap() -> Option<usize> {
    static CAP: OnceLock<Option<usize>> = OnceLock::new();
    *CAP.get_or_init(|| {
        let raw = std::env::var("TPROV_QUERY_THREADS").ok()?;
        let parsed = parse_thread_cap(&raw);
        if parsed.is_none() {
            eprintln!(
                "warning: ignoring invalid TPROV_QUERY_THREADS={raw:?} \
                 (expected an integer in 1..={MAX_QUERY_THREADS})"
            );
        }
        parsed
    })
}

/// The query worker pool size in effect: the [`set_query_threads`]
/// override if set, else a valid `TPROV_QUERY_THREADS`, else the machine's
/// available parallelism clamped to at least 2 (so the concurrent path is
/// genuinely exercised even on single-core hosts) and at most 8 (trace
/// lookups are short; more threads only add contention).
pub fn query_workers() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Some(n) = env_thread_cap() {
        return n;
    }
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.clamp(2, 8)
}

/// Number of worker threads for `items` units of work: [`query_workers`],
/// never more than there are items.
fn worker_count(items: usize) -> usize {
    query_workers().min(items.max(1))
}

/// Applies `f` to every item on scoped worker threads and returns the
/// results in input order. Work is distributed by an atomic cursor, so
/// uneven item costs balance across workers.
///
/// Lock-freedom: the only shared mutable state is the atomic cursor. Each
/// worker accumulates `(index, result)` pairs in its own thread-local
/// vector, returned through its join handle; the scope thread then places
/// every result into a pre-sized slot vector. No mutex is acquired
/// anywhere on the hot loop (the previous implementation locked a shared
/// `Mutex<Vec>` once per item, which serialised short lookups), and the
/// cursor hands each index to exactly one worker, so every slot is written
/// exactly once.
pub(crate) fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                // A worker panic (e.g. a panicking closure under test)
                // propagates instead of yielding a torn result vector.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            None => unreachable!("atomic cursor hands every index to exactly one worker"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Serialises tests that mutate the process-wide thread override (or
    /// depend on its default), so parallel test threads don't race it.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_item() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |&i| i).is_empty());
        assert_eq!(parallel_map(&[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        let _guard = OVERRIDE_LOCK.lock();
        // With enough slow items, at least two workers must participate.
        let items: Vec<u32> = (0..64).collect();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        parallel_map(&items, |_| {
            seen.lock().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().len() >= 2, "fan-out used a single thread");
    }

    #[test]
    fn every_item_is_mapped_exactly_once() {
        // The cursor + per-worker-chunk design must call `f` exactly once
        // per item and fill every slot — no duplicates (a double fetch
        // would double-count), no holes (a dropped chunk would panic the
        // unreachable! in assembly).
        let _guard = OVERRIDE_LOCK.lock();
        let items: Vec<usize> = (0..257).collect();
        let calls = AtomicUsize::new(0);
        let out = parallel_map(&items, |&i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn thread_override_controls_worker_count() {
        let _guard = OVERRIDE_LOCK.lock();
        set_query_threads(Some(3));
        assert_eq!(query_workers(), 3);
        assert_eq!(worker_count(100), 3);
        assert_eq!(worker_count(2), 2);
        // 1 disables fan-out: parallel_map runs inline.
        set_query_threads(Some(1));
        let tid = std::thread::current().id();
        let out = parallel_map(&[1u32, 2, 3], |&i| (i, std::thread::current().id()));
        assert!(out.iter().all(|(_, t)| *t == tid), "expected inline execution");
        // Out-of-range requests clamp instead of exploding.
        set_query_threads(Some(0));
        assert_eq!(query_workers(), 1);
        set_query_threads(Some(MAX_QUERY_THREADS + 17));
        assert_eq!(query_workers(), MAX_QUERY_THREADS);
        set_query_threads(None);
        assert!(query_workers() >= 2);
    }

    #[test]
    fn worker_count_is_clamped() {
        let _guard = OVERRIDE_LOCK.lock();
        set_query_threads(None);
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(100) >= 2);
        assert!(worker_count(100) <= 8);
    }

    #[test]
    fn env_values_parse_with_validation() {
        assert_eq!(parse_thread_cap("4"), Some(4));
        assert_eq!(parse_thread_cap(" 16 "), Some(16));
        assert_eq!(parse_thread_cap("1"), Some(1));
        assert_eq!(parse_thread_cap("256"), Some(256));
        assert_eq!(parse_thread_cap("0"), None);
        assert_eq!(parse_thread_cap("257"), None);
        assert_eq!(parse_thread_cap("-2"), None);
        assert_eq!(parse_thread_cap("eight"), None);
        assert_eq!(parse_thread_cap(""), None);
    }
}
