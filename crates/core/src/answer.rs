//! Query answers.

use std::fmt;

use serde::{Deserialize, Serialize};

use prov_model::{Binding, RunId};

/// The answer to a lineage query over one run: the set of bindings at the
/// interesting processors, plus the work accounting both algorithms expose
/// for the evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageAnswer {
    /// The run the answer pertains to.
    pub run: RunId,
    /// The collected bindings, sorted (port, index) and deduplicated, so
    /// answers from different algorithms compare with `==`.
    pub bindings: Vec<Binding>,
    /// Number of trace queries issued (phase *s2* units).
    pub trace_queries: usize,
    /// Number of graph nodes visited (provenance-graph nodes for NI,
    /// spec-graph ports for INDEXPROJ — phase *s1* units).
    pub nodes_visited: usize,
}

impl LineageAnswer {
    /// Builds an answer, normalising the binding order.
    pub fn new(
        run: RunId,
        mut bindings: Vec<Binding>,
        trace_queries: usize,
        nodes_visited: usize,
    ) -> Self {
        bindings.sort_by(|a, b| (&a.port, &a.index).cmp(&(&b.port, &b.index)));
        bindings.dedup();
        LineageAnswer { run, bindings, trace_queries, nodes_visited }
    }

    /// Whether the two answers agree on the binding set (ignoring the work
    /// accounting) — the NI ≡ INDEXPROJ equivalence checked by tests.
    pub fn same_bindings(&self, other: &LineageAnswer) -> bool {
        self.bindings == other.bindings
    }
}

impl fmt::Display for LineageAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {} binding(s):", self.run, self.bindings.len())?;
        for b in &self.bindings {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{Index, PortRef, Value};

    fn b(port: &str, idx: &[u32], v: i64) -> Binding {
        Binding::new(PortRef::new("P", port), Index::from_slice(idx), Value::int(v))
    }

    #[test]
    fn constructor_sorts_and_dedups() {
        let a = LineageAnswer::new(
            RunId(0),
            vec![b("y", &[1], 1), b("x", &[0], 2), b("y", &[1], 1)],
            3,
            5,
        );
        assert_eq!(a.bindings.len(), 2);
        assert_eq!(a.bindings[0].port.port_str(), "x");
    }

    #[test]
    fn same_bindings_ignores_accounting() {
        let a = LineageAnswer::new(RunId(0), vec![b("x", &[], 1)], 1, 1);
        let c = LineageAnswer::new(RunId(0), vec![b("x", &[], 1)], 99, 99);
        assert!(a.same_bindings(&c));
        let d = LineageAnswer::new(RunId(0), vec![b("x", &[0], 1)], 1, 1);
        assert!(!a.same_bindings(&d));
    }

    #[test]
    fn display_lists_bindings() {
        let a = LineageAnswer::new(RunId(2), vec![b("x", &[0], 7)], 1, 1);
        let s = a.to_string();
        assert!(s.contains("run:2"));
        assert!(s.contains("⟨P:x[0], 7⟩"));
    }
}
