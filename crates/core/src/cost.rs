//! A static cost model for lineage plans.
//!
//! Predicts, per plan step and in total, the two machine-independent
//! counters the store actually maintains ([`prov_store::QueryStats`]):
//!
//! * **`index_lookups`** — exact: `get_overlapping` costs `|p| + 2` B-tree
//!   descents per step (the ancestor prefix chain plus the descendant
//!   range), independent of trace contents;
//! * **`rows_scanned`** — estimated from per-port slice statistics
//!   ([`PortCardinality`]) under a uniform-branching assumption: a slice
//!   with `keys` distinct element indexes at depth `d` has branching
//!   factor `b = keys^(1/d)`, so a probe of depth `g` selects about
//!   `rows / b^g` of its rows. The estimate is deliberately biased *up*
//!   (the store counts a point probe's exact rows twice — once on the
//!   ancestor chain, once on the descendant scan — so the model doubles
//!   the subtree term and adds one row per ancestor level); for the
//!   balanced collections prov-workgen generates it is an upper bound
//!   within a small constant factor of the true counter, which the
//!   workspace proptests pin at ≤ 10×.
//!
//! Predictions compare against the **sum** of the store's `records_read`
//! and `rows_scanned` counters — rows examined by any access path — so a
//! hypothetical table-scan fallback is charged the same way as an indexed
//! read. [`CostEstimate::check`] packages that comparison for
//! `tprov explain --check`.

use serde::{Deserialize, Serialize};

use prov_store::PortCardinality;

use crate::verify::{PlanReport, StepClass};
use crate::LineagePlan;

/// Predicted cost of one plan step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCost {
    /// B-tree descents the step will perform (exact).
    pub index_lookups: u64,
    /// Rows the step will examine (estimate; 0 when no statistics).
    pub rows_scanned: u64,
}

/// Predicted cost of a whole plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Per-step predictions, in plan-step order.
    pub per_step: Vec<StepCost>,
    /// Total predicted index lookups.
    pub index_lookups: u64,
    /// Total predicted rows examined.
    pub rows_scanned: u64,
    /// Whether every step had slice statistics behind its row estimate;
    /// spec-only explanations predict lookups but not rows.
    pub grounded: bool,
}

/// Outcome of cross-checking a prediction against observed counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostCheck {
    /// Predicted index lookups.
    pub predicted_lookups: u64,
    /// Observed index lookups.
    pub actual_lookups: u64,
    /// Predicted rows examined.
    pub predicted_rows: u64,
    /// Observed rows examined (`records_read + rows_scanned`).
    pub actual_rows: u64,
    /// The tolerance factor the row check used.
    pub tolerance: f64,
    /// Whether both checks passed.
    pub ok: bool,
}

impl CostEstimate {
    /// Cross-checks the prediction against observed counters. Lookups must
    /// match exactly (the model is exact there); rows must satisfy
    /// `actual ≤ predicted ≤ tolerance · max(actual, 1)` — an upper bound
    /// that is not wildly loose. Ungrounded estimates skip the row check.
    pub fn check(&self, actual_lookups: u64, actual_rows: u64, tolerance: f64) -> CostCheck {
        let lookups_ok = self.index_lookups == actual_lookups;
        let rows_ok = !self.grounded
            || (self.rows_scanned >= actual_rows
                && (self.rows_scanned as f64) <= tolerance * (actual_rows.max(1) as f64));
        CostCheck {
            predicted_lookups: self.index_lookups,
            actual_lookups,
            predicted_rows: self.rows_scanned,
            actual_rows,
            tolerance,
            ok: lookups_ok && rows_ok,
        }
    }
}

/// The model's tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Multiplier on the subtree term. The default of 2.0 mirrors the
    /// store's double-count of exact-key rows and absorbs mild imbalance.
    pub safety: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { safety: 2.0 }
    }
}

impl CostModel {
    /// Predicts the cost of one step given its verdict and (optionally)
    /// the cardinality of the `(run, processor, port)` slice it probes.
    pub fn step_cost(
        &self,
        probe_len: usize,
        class: StepClass,
        served: bool,
        card: Option<PortCardinality>,
    ) -> StepCost {
        if !served {
            // No index to descend: the only option is to scan the slice
            // (when statistics exist) or an unknown amount of the table.
            let rows = card.map(|c| c.rows).unwrap_or(0);
            return StepCost { index_lookups: 0, rows_scanned: rows };
        }
        let index_lookups = probe_len as u64 + 2;
        let rows_scanned = match card {
            None => 0,
            Some(c) if c.rows == 0 => 0,
            Some(c) => {
                // Uniform branching: keys ≈ b^d, so a depth-g probe keeps
                // a 1/b^g fraction of the slice. Clamp g to the stored
                // depth: deeper probes clamp to ancestors (StepClass::
                // ClampedProbe) and read no more than the exact subtree.
                let g = match class {
                    StepClass::FullScan => 0,
                    _ => probe_len.min(c.max_depth),
                };
                let d = c.max_depth.max(1) as f64;
                let b = (c.keys as f64).powf(1.0 / d).max(1.0);
                let subtree = c.rows as f64 / b.powi(g as i32);
                (self.safety * subtree).ceil() as u64 + g as u64
            }
        };
        StepCost { index_lookups, rows_scanned }
    }

    /// Predicts the cost of a whole verified plan. `cardinalities` is one
    /// entry per step, in step order (`None` when no statistics).
    pub fn estimate(
        &self,
        plan: &LineagePlan,
        report: &PlanReport,
        cardinalities: &[Option<PortCardinality>],
    ) -> CostEstimate {
        let mut per_step = Vec::with_capacity(plan.steps.len());
        let mut grounded = true;
        for (i, (step, verdict)) in plan.steps.iter().zip(&report.steps).enumerate() {
            let card = cardinalities.get(i).copied().flatten();
            grounded &= card.is_some();
            per_step.push(self.step_cost(step.index.len(), verdict.class, verdict.served, card));
        }
        CostEstimate {
            index_lookups: per_step.iter().map(|s| s.index_lookups).sum(),
            rows_scanned: per_step.iter().map(|s| s.rows_scanned).sum(),
            grounded: grounded && !per_step.is_empty(),
            per_step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_probe_length_plus_two() {
        let m = CostModel::default();
        let c = m.step_cost(2, StepClass::PointProbe, true, None);
        assert_eq!(c.index_lookups, 4);
        assert_eq!(c.rows_scanned, 0, "no statistics, no row prediction");
    }

    #[test]
    fn uniform_branching_scales_the_subtree() {
        // 9 keys at depth 2 → branching 3; a depth-2 point probe keeps a
        // ninth of the 18 rows, doubled for the store's exact-key recount.
        let m = CostModel::default();
        let card = PortCardinality { keys: 9, rows: 18, max_depth: 2 };
        let c = m.step_cost(2, StepClass::PointProbe, true, Some(card));
        assert_eq!(c.rows_scanned, 2 * 2 + 2);
        // An empty probe reads the whole slice (full scan of the port).
        let c0 = m.step_cost(0, StepClass::FullScan, true, Some(card));
        assert_eq!(c0.rows_scanned, 2 * 18);
    }

    #[test]
    fn unserved_steps_cost_a_slice_scan_and_no_lookups() {
        let m = CostModel::default();
        let card = PortCardinality { keys: 4, rows: 7, max_depth: 1 };
        let c = m.step_cost(1, StepClass::FullScan, false, Some(card));
        assert_eq!(c.index_lookups, 0);
        assert_eq!(c.rows_scanned, 7);
    }

    #[test]
    fn check_enforces_exact_lookups_and_bounded_rows() {
        let est =
            CostEstimate { per_step: vec![], index_lookups: 6, rows_scanned: 8, grounded: true };
        assert!(est.check(6, 5, 10.0).ok);
        assert!(!est.check(7, 5, 10.0).ok, "lookup model must be exact");
        assert!(!est.check(6, 9, 10.0).ok, "prediction must stay an upper bound");
        assert!(!est.check(6, 0, 5.0).ok, "8 > 5 × max(0, 1)");
        let ungrounded = CostEstimate { grounded: false, ..est };
        assert!(ungrounded.check(6, 1000, 10.0).ok, "no stats: rows not checked");
    }
}
