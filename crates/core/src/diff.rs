//! Differencing lineage across runs (§3.4): "this generalised form of
//! query is useful for comparing data products across multiple runs of the
//! same workflow".
//!
//! Given two runs of one workflow and a target binding, [`diff_lineage`]
//! computes both lineage answers with a **shared** plan (one spec-graph
//! traversal for both runs — exactly the multi-run economics the paper
//! describes) and splits the bindings into common / only-A / only-B.
//! [`diff_traces`] compares the runs at the trace level: per-processor
//! invocation counts, a cheap first signal of *where* two runs diverged.
//!
//! Full dependency-graph differencing (Bao et al., cited by the paper) is
//! out of scope here, as it is there.

use std::collections::BTreeMap;

use prov_dataflow::Dataflow;
use prov_model::{Binding, ProcessorName, RunId};
use prov_store::TraceStore;

use crate::{IndexProj, LineageQuery, Result};

/// The outcome of comparing one lineage question across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageDiff {
    /// The compared runs `(a, b)`.
    pub runs: (RunId, RunId),
    /// Bindings present in both answers (port, index and value all equal).
    pub common: Vec<Binding>,
    /// Bindings only in run A's answer.
    pub only_a: Vec<Binding>,
    /// Bindings only in run B's answer.
    pub only_b: Vec<Binding>,
}

impl LineageDiff {
    /// Whether the two answers are identical.
    pub fn is_same(&self) -> bool {
        self.only_a.is_empty() && self.only_b.is_empty()
    }
}

impl std::fmt::Display for LineageDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} vs {}: {} common, {} only in A, {} only in B",
            self.runs.0,
            self.runs.1,
            self.common.len(),
            self.only_a.len(),
            self.only_b.len()
        )?;
        for b in &self.only_a {
            writeln!(f, "  - {b}")?;
        }
        for b in &self.only_b {
            writeln!(f, "  + {b}")?;
        }
        Ok(())
    }
}

/// Answers `query` on both runs with one shared plan and diffs the
/// binding sets.
pub fn diff_lineage(
    df: &Dataflow,
    store: &TraceStore,
    run_a: RunId,
    run_b: RunId,
    query: &LineageQuery,
) -> Result<LineageDiff> {
    let plan = IndexProj::new(df).plan(query)?;
    let a = plan.execute(store, run_a)?;
    let b = plan.execute(store, run_b)?;

    let mut common = Vec::new();
    let mut only_a = Vec::new();
    for binding in &a.bindings {
        if b.bindings.contains(binding) {
            common.push(binding.clone());
        } else {
            only_a.push(binding.clone());
        }
    }
    let only_b: Vec<Binding> =
        b.bindings.iter().filter(|x| !a.bindings.contains(x)).cloned().collect();
    Ok(LineageDiff { runs: (run_a, run_b), common, only_a, only_b })
}

/// Per-processor invocation counts of two runs, for a cheap structural
/// comparison of traces ("did the second run iterate differently?").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// The compared runs `(a, b)`.
    pub runs: (RunId, RunId),
    /// Per processor: invocation counts in run A and run B. Processors
    /// absent from a run count 0.
    pub invocations: BTreeMap<ProcessorName, (u64, u64)>,
}

impl TraceDiff {
    /// Processors whose invocation counts differ.
    pub fn divergent(&self) -> Vec<(&ProcessorName, u64, u64)> {
        self.invocations
            .iter()
            .filter(|(_, (a, b))| a != b)
            .map(|(p, (a, b))| (p, *a, *b))
            .collect()
    }

    /// Whether the two traces have identical iteration structure.
    pub fn is_same_shape(&self) -> bool {
        self.divergent().is_empty()
    }
}

/// Compares the iteration structure of two runs.
pub fn diff_traces(store: &TraceStore, run_a: RunId, run_b: RunId) -> TraceDiff {
    let mut invocations: BTreeMap<ProcessorName, (u64, u64)> = BTreeMap::new();
    for rec in store.xforms_of_run(run_a) {
        invocations.entry(rec.processor.clone()).or_default().0 += 1;
    }
    for rec in store.xforms_of_run(run_b) {
        invocations.entry(rec.processor.clone()).or_default().1 += 1;
    }
    TraceDiff { runs: (run_a, run_b), invocations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{Index, PortRef, Value};
    use prov_workgen::testbed;

    /// The canonical testbed query, built locally: `testbed::focused_query`
    /// returns the *dependency* crate's `LineageQuery`, a distinct type in
    /// this crate's own test build.
    fn canonical_query(p: &[u32]) -> LineageQuery {
        LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(p),
            [ProcessorName::from("LISTGEN_1")],
        )
    }

    #[test]
    fn identical_runs_diff_clean() {
        let df = testbed::generate(3);
        let store = TraceStore::in_memory();
        let a = testbed::run(&df, 4, &store).run_id;
        let b = testbed::run(&df, 4, &store).run_id;
        let q = canonical_query(&[1, 2]);
        let diff = diff_lineage(&df, &store, a, b, &q).unwrap();
        assert!(diff.is_same(), "{diff}");
        assert_eq!(diff.common.len(), 1);
        assert!(diff_traces(&store, a, b).is_same_shape());
    }

    #[test]
    fn different_inputs_show_up_in_the_diff() {
        let df = testbed::generate(3);
        let store = TraceStore::in_memory();
        let a = testbed::run(&df, 4, &store).run_id;
        let b = testbed::run(&df, 6, &store).run_id;
        let q = canonical_query(&[1, 2]);
        let diff = diff_lineage(&df, &store, a, b, &q).unwrap();
        assert!(!diff.is_same());
        // The ListSize inputs differ: 4 vs 6.
        assert_eq!(diff.only_a.len(), 1);
        assert_eq!(diff.only_a[0].value, Value::int(4));
        assert_eq!(diff.only_b[0].value, Value::int(6));
        assert!(diff.to_string().contains("- ⟨LISTGEN_1:size[], 4⟩"));

        // And the iteration structure diverges everywhere downstream.
        let tdiff = diff_traces(&store, a, b);
        assert!(!tdiff.is_same_shape());
        let chain_div = tdiff
            .divergent()
            .iter()
            .find(|(p, _, _)| p.as_str() == "CHAIN_A_1")
            .map(|(_, x, y)| (*x, *y));
        assert_eq!(chain_div, Some((4, 6)));
        // LISTGEN_1 itself ran once in both.
        assert_eq!(tdiff.invocations[&ProcessorName::from("LISTGEN_1")], (1, 1));
    }

    #[test]
    fn diff_against_empty_run_lists_everything_as_only_a() {
        let df = testbed::generate(2);
        let store = TraceStore::in_memory();
        let a = testbed::run(&df, 3, &store).run_id;
        let ghost = {
            use prov_engine::TraceSink;
            store.begin_run(&"testbed".into())
        };
        let q = LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(&[0, 0]),
            [ProcessorName::from("LISTGEN_1")],
        );
        let diff = diff_lineage(&df, &store, a, ghost, &q).unwrap();
        assert_eq!(diff.only_a.len(), 1);
        assert!(diff.only_b.is_empty());
        assert!(diff.common.is_empty());
    }
}
