//! Caching of compiled lineage plans.
//!
//! "Since the workflow graph is generally much smaller than any provenance
//! graph, it is feasible to cache the nodes visited in one query to speed
//! up their access in subsequent queries, as all queries on a provenance
//! trace share the same workflow structure" (§3). A [`PlanCache`] memoises
//! whole [`LineagePlan`]s per `(target, index, 𝒫)` — the warm-cache
//! strategy of Fig. 9.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use prov_model::RunId;
use prov_store::TraceStore;

use crate::{IndexProj, LineageAnswer, LineagePlan, LineageQuery, Result};

/// A thread-safe cache of compiled plans for one workflow.
pub struct PlanCache<'a> {
    index_proj: IndexProj<'a>,
    plans: Mutex<HashMap<LineageQuery, Arc<LineagePlan>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl<'a> PlanCache<'a> {
    /// A cache in front of the given INDEXPROJ processor.
    pub fn new(index_proj: IndexProj<'a>) -> Self {
        PlanCache {
            index_proj,
            plans: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// The plan for `query`, compiled at most once.
    pub fn plan(&self, query: &LineageQuery) -> Result<Arc<LineagePlan>> {
        if let Some(p) = self.plans.lock().get(query) {
            *self.hits.lock() += 1;
            return Ok(Arc::clone(p));
        }
        let plan = Arc::new(self.index_proj.plan(query)?);
        self.plans.lock().insert(query.clone(), Arc::clone(&plan));
        *self.misses.lock() += 1;
        Ok(plan)
    }

    /// Plans (or reuses) and executes over one run.
    pub fn run(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
    ) -> Result<LineageAnswer> {
        self.plan(query)?.execute(store, run)
    }

    /// Plans (or reuses) and executes over several runs.
    pub fn run_multi(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
    ) -> Result<Vec<LineageAnswer>> {
        self.plan(query)?.execute_multi(store, runs)
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_model::{Index, PortRef, ProcessorName};

    fn tiny() -> prov_dataflow::Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::Int));
        b.processor_with_behavior("A", "identity")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "A", "x").unwrap();
        b.output("out", PortType::list(BaseType::Int));
        b.arc_to_output("A", "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_queries_hit_the_cache() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        let p1 = cache.plan(&q).unwrap();
        let p2 = cache.plan(&q).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_indices_are_distinct_entries() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        for i in 0..3 {
            let q = LineageQuery::focused(
                PortRef::new("wf", "out"),
                Index::single(i),
                [ProcessorName::from("wf")],
            );
            cache.plan(&q).unwrap();
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn different_focus_sets_are_distinct_entries() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let base = PortRef::new("wf", "out");
        cache
            .plan(&LineageQuery::focused(base.clone(), Index::empty(), [ProcessorName::from("wf")]))
            .unwrap();
        cache
            .plan(&LineageQuery::focused(base, Index::empty(), [ProcessorName::from("A")]))
            .unwrap();
        assert_eq!(cache.len(), 2);
    }
}
