//! Caching of compiled lineage plans.
//!
//! "Since the workflow graph is generally much smaller than any provenance
//! graph, it is feasible to cache the nodes visited in one query to speed
//! up their access in subsequent queries, as all queries on a provenance
//! trace share the same workflow structure" (§3). A [`PlanCache`] memoises
//! whole [`LineagePlan`]s per `(target, index, 𝒫)` — the warm-cache
//! strategy of Fig. 9.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use prov_model::RunId;
use prov_obs::{Counter, Registry};
use prov_store::TraceStore;

use crate::{IndexProj, LineageAnswer, LineagePlan, LineageQuery, Result};

/// Entries sharing one pre-computed query hash; disambiguated by full
/// query equality.
type Bucket = Vec<(LineageQuery, Arc<LineagePlan>)>;

/// A thread-safe cache of compiled plans for one workflow.
///
/// Lookup cost is kept off the query hot path: the full query (target,
/// index and the whole focus set) is hashed **once** per lookup into a
/// `u64` bucket key; within a bucket only that cheap pre-computed key's
/// collisions are compared with full equality. Hit/miss counters are
/// lock-free atomics, so concurrent query threads never serialise on
/// bookkeeping.
pub struct PlanCache<'a> {
    index_proj: IndexProj<'a>,
    /// Pre-computed query hash → entries whose query has that hash.
    buckets: Mutex<HashMap<u64, Bucket>>,
    hits: Counter,
    misses: Counter,
    /// Optional event journal; every compile (cache miss) is recorded as
    /// a `PlanCacheMiss` with the query's fingerprint. Disabled by
    /// default (one branch per miss).
    journal: prov_obs::Journal,
}

/// Point-in-time hit/miss counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that compiled a new plan.
    pub misses: u64,
}

impl<'a> PlanCache<'a> {
    /// A cache in front of the given INDEXPROJ processor.
    pub fn new(index_proj: IndexProj<'a>) -> Self {
        PlanCache {
            index_proj,
            buckets: Mutex::new(HashMap::new()),
            hits: Counter::standalone(),
            misses: Counter::standalone(),
            journal: prov_obs::Journal::disabled(),
        }
    }

    /// Attaches an event journal: cache misses (plan compiles) are
    /// recorded as `PlanCacheMiss` events keyed by query fingerprint.
    pub fn with_journal(mut self, journal: &prov_obs::Journal) -> Self {
        self.journal = journal.clone();
        self
    }

    /// Adopts the hit/miss counters into `registry` as `plan_cache.hits`
    /// / `plan_cache.misses` (shared storage, no extra lookup-path cost).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.adopt_counter("plan_cache.hits", &self.hits);
        registry.adopt_counter("plan_cache.misses", &self.misses);
    }

    /// The query's stable fingerprint: one hash over the whole query
    /// (target, index and focus set). Doubles as the cache bucket key and
    /// as the plan fingerprint in journal events and the slow-query log,
    /// so `tprov slow` aggregates line up with `PlanCacheMiss` events.
    pub fn fingerprint(query: &LineageQuery) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        query.hash(&mut h);
        h.finish()
    }

    /// The plan for `query`, compiled at most once.
    pub fn plan(&self, query: &LineageQuery) -> Result<Arc<LineagePlan>> {
        let key = Self::fingerprint(query);
        if let Some(bucket) = self.buckets.lock().get(&key) {
            if let Some((_, p)) = bucket.iter().find(|(q, _)| q == query) {
                self.hits.inc();
                return Ok(Arc::clone(p));
            }
        }
        // Compile outside the lock: planning is pure graph work and may be
        // slow; concurrent misses on the same query both compile, but only
        // one entry survives.
        let plan = Arc::new(self.index_proj.plan(query)?);
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(key).or_default();
        if let Some((_, p)) = bucket.iter().find(|(q, _)| q == query) {
            // Another thread inserted while we compiled.
            self.hits.inc();
            return Ok(Arc::clone(p));
        }
        bucket.push((query.clone(), Arc::clone(&plan)));
        self.misses.inc();
        self.journal.record(prov_obs::JournalEvent::PlanCacheMiss { fingerprint: key });
        Ok(plan)
    }

    /// Plans (or reuses) and executes over one run.
    pub fn run(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
    ) -> Result<LineageAnswer> {
        self.plan(query)?.execute(store, run)
    }

    /// Plans (or reuses) and executes over several runs.
    pub fn run_multi(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
    ) -> Result<Vec<LineageAnswer>> {
        self.plan(query)?.execute_multi(store, runs)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats { hits: self.hits.get(), misses: self.misses.get() }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.buckets.lock().values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_model::{Index, PortRef, ProcessorName};

    fn tiny() -> prov_dataflow::Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::Int));
        b.processor_with_behavior("A", "identity")
            .in_port("x", PortType::atom(BaseType::Int))
            .out_port("y", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "A", "x").unwrap();
        b.output("out", PortType::list(BaseType::Int));
        b.arc_to_output("A", "y", "out").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_queries_hit_the_cache() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        let p1 = cache.plan(&q).unwrap();
        let p2 = cache.plan(&q).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_indices_are_distinct_entries() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        for i in 0..3 {
            let q = LineageQuery::focused(
                PortRef::new("wf", "out"),
                Index::single(i),
                [ProcessorName::from("wf")],
            );
            cache.plan(&q).unwrap();
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..25 {
                        cache.plan(&q).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
        let PlanCacheStats { hits, misses } = cache.stats();
        // Every lookup is accounted exactly once, however the races fall.
        assert_eq!(hits + misses, 200);
        assert!(misses >= 1);
    }

    #[test]
    fn registered_counters_mirror_stats() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let registry = prov_obs::Registry::new();
        cache.register_metrics(&registry);
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        cache.plan(&q).unwrap();
        cache.plan(&q).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("plan_cache.hits"), cache.stats().hits);
        assert_eq!(snap.counter("plan_cache.misses"), cache.stats().misses);
        assert_eq!(snap.counter("plan_cache.hits"), 1);
    }

    #[test]
    fn different_focus_sets_are_distinct_entries() {
        let df = tiny();
        let cache = PlanCache::new(IndexProj::new(&df));
        let base = PortRef::new("wf", "out");
        cache
            .plan(&LineageQuery::focused(base.clone(), Index::empty(), [ProcessorName::from("wf")]))
            .unwrap();
        cache
            .plan(&LineageQuery::focused(base, Index::empty(), [ProcessorName::from("A")]))
            .unwrap();
        assert_eq!(cache.len(), 2);
    }
}
