//! Lineage query descriptions.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use prov_model::{Index, PortRef, ProcessorName};

/// The set `𝒫` of "interesting" processors a query is focused on.
///
/// Ordered (`BTreeSet`) so that equal focus sets hash and compare equal —
/// the plan cache keys on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FocusSet(BTreeSet<ProcessorName>);

impl FocusSet {
    /// An empty focus set (a query that merely tests reachability).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a focus set from names.
    pub fn from_names(names: impl IntoIterator<Item = ProcessorName>) -> Self {
        FocusSet(names.into_iter().collect())
    }

    /// Whether `processor` is interesting.
    pub fn contains(&self, processor: &ProcessorName) -> bool {
        self.0.contains(processor)
    }

    /// Number of interesting processors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates the names in order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessorName> {
        self.0.iter()
    }

    /// Adds a processor.
    pub fn insert(&mut self, processor: ProcessorName) {
        self.0.insert(processor);
    }
}

impl FromIterator<ProcessorName> for FocusSet {
    fn from_iter<T: IntoIterator<Item = ProcessorName>>(iter: T) -> Self {
        FocusSet(iter.into_iter().collect())
    }
}

impl fmt::Display for FocusSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// A lineage query `lin(⟨P:Y[p], v⟩, 𝒫)` (Def. 1): starting from position
/// `index` of the value observed on `target`, collect the bindings at the
/// interesting processors `focus` along every upstream path.
///
/// The value `v` itself is *not* part of the query: Prop. 1 shows lineage
/// is computable from `(P:Y, p)` alone, and both query processors exploit
/// that.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineageQuery {
    /// The port whose value's lineage is asked for (often a workflow
    /// output, e.g. `workflow:paths_per_gene`).
    pub target: PortRef,
    /// Position within the target value; `[]` asks for the lineage of the
    /// whole value (coarse granularity on demand, §2.4).
    pub index: Index,
    /// The interesting processors `𝒫`.
    pub focus: FocusSet,
}

impl LineageQuery {
    /// A focused query on the given processors.
    pub fn focused(
        target: PortRef,
        index: Index,
        focus: impl IntoIterator<Item = ProcessorName>,
    ) -> Self {
        LineageQuery { target, index, focus: FocusSet::from_names(focus) }
    }

    /// A fully *unfocused* query over the given workflow: every processor
    /// (and the workflow itself, i.e. its input bindings) is interesting.
    /// This is the configuration in which INDEXPROJ "only approaches NI"
    /// (§4).
    pub fn unfocused(target: PortRef, index: Index, dataflow: &prov_dataflow::Dataflow) -> Self {
        let mut focus = FocusSet::empty();
        focus.insert(dataflow.name.clone());
        for p in &dataflow.processors {
            focus.insert(p.name.clone());
        }
        LineageQuery { target, index, focus }
    }

    /// The same query with a coarse (whole-value) index.
    pub fn coarse(&self) -> Self {
        LineageQuery {
            target: self.target.clone(),
            index: Index::empty(),
            focus: self.focus.clone(),
        }
    }
}

impl fmt::Display for LineageQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lin(⟨{}{}⟩, {})", self.target, self.index, self.focus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};

    #[test]
    fn focus_set_is_order_insensitive() {
        let a = FocusSet::from_names(["P".into(), "Q".into()]);
        let b = FocusSet::from_names(["Q".into(), "P".into()]);
        assert_eq!(a, b);
        assert!(a.contains(&"P".into()));
        assert!(!a.contains(&"R".into()));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_uses_paper_notation() {
        let q = LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(&[1, 2]),
            [ProcessorName::from("LISTGEN_1")],
        );
        assert_eq!(q.to_string(), "lin(⟨2TO1_FINAL:Y[1,2]⟩, {LISTGEN_1})");
    }

    #[test]
    fn unfocused_covers_all_processors_and_workflow() {
        let mut b = DataflowBuilder::new("wf");
        b.processor("P").out_port("y", PortType::atom(BaseType::Int));
        b.processor("Q").out_port("y", PortType::atom(BaseType::Int));
        let df = b.build().unwrap();
        let q = LineageQuery::unfocused(PortRef::new("wf", "out"), Index::empty(), &df);
        assert_eq!(q.focus.len(), 3);
        assert!(q.focus.contains(&"wf".into()));
    }

    #[test]
    fn coarse_drops_the_index_only() {
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[3]),
            [ProcessorName::from("Q")],
        );
        let c = q.coarse();
        assert!(c.index.is_empty());
        assert_eq!(c.target, q.target);
        assert_eq!(c.focus, q.focus);
    }
}
