//! **prov-verify**: static verification of compiled lineage plans.
//!
//! The paper's headline property — "all of the queries on the traces
//! involve the use of indexes, with none requiring full table scans" — is
//! not a property of a [`LineagePlan`] alone: it holds only when every
//! step's probe lines up with a composite index the store actually
//! maintains, at the depth the engine actually records. This module checks
//! that contract *statically*, before any trace access:
//!
//! * each step is mapped to the composite index it will probe
//!   ([`IndexId::XformIn`] for xform-input lookups, [`IndexId::XferSrc`]
//!   for scope-input lookups) and checked against the store's
//!   [`IndexCatalog`];
//! * each step's probe length is compared with the depth the engine
//!   stores for that port under fine-grained recording
//!   ([`PlanStep::expected_depth`], derived purely from Algorithm 1
//!   depths), classifying the step as a point probe, span scan, clamped
//!   probe or full scan;
//! * findings are reported as [`Diagnostic`]s with stable `1xx` codes
//!   (`E101` unservable index, `E102` plan/spec mismatch, `W101`
//!   uncovered step, `W102` span scan, `W103` clamped probe), reusing
//!   prov-dataflow's rendering machinery so spec lints and plan findings
//!   share one report format.
//!
//! [`IndexProj::explain`] bundles verification with the static cost model
//! ([`crate::CostModel`]) into the [`Explanation`] printed by
//! `tprov explain`; [`IndexProj::plan_checked`] is the pre-flight hook
//! that refuses to hand out a plan with error-level findings.

use prov_dataflow::{
    sort_diagnostics, Dataflow, DiagCode, Diagnostic, Location, NodeRef, ProcessorKind,
};
use prov_model::RunId;
use prov_obs::Obs;
use prov_store::{IndexCatalog, IndexId, PortCardinality, TraceStore};

use crate::cost::{CostEstimate, CostModel};
use crate::{CoreError, IndexProj, LineagePlan, LineageQuery, PlanStep, Result, StepKind};

/// How a plan step's probe relates to the rows the engine stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepClass {
    /// The probe is exactly as deep as the stored rows: one key lookup.
    PointProbe,
    /// The probe is shallower than the stored rows (but not empty): the
    /// lookup widens to a contiguous span scan over the probe's subtree.
    SpanScan {
        /// Stored depth minus probe depth.
        missing: usize,
    },
    /// The probe is deeper than the stored rows: the extra components
    /// cannot discriminate and the lookup clamps to stored ancestors.
    ClampedProbe {
        /// Probe depth minus stored depth.
        extra: usize,
    },
    /// The lookup cannot use any index component (empty probe over deep
    /// rows, an unserved index, or an unresolvable step): every row of the
    /// `(run, processor, port)` slice — or the whole table — is read.
    FullScan,
}

impl StepClass {
    /// Stable lowercase label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            StepClass::PointProbe => "point-probe",
            StepClass::SpanScan { .. } => "span-scan",
            StepClass::ClampedProbe { .. } => "clamped-probe",
            StepClass::FullScan => "full-scan",
        }
    }
}

impl std::fmt::Display for StepClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One plan step together with the verifier's verdict on it.
#[derive(Debug, Clone)]
pub struct VerifiedStep {
    /// Position in [`LineagePlan::steps`].
    pub step_index: usize,
    /// The composite index the step will probe.
    pub index_id: IndexId,
    /// Access-path classification.
    pub class: StepClass,
    /// Whether the store's catalog serves [`VerifiedStep::index_id`].
    pub served: bool,
    /// Whether the step's processor/port resolve in the specification.
    pub resolved: bool,
}

/// The verifier's full report on one plan.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// One verdict per plan step, in step order.
    pub steps: Vec<VerifiedStep>,
    /// Findings in the stable diagnostic order (errors first, then by
    /// code, location, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanReport {
    /// Number of error-level findings (`E1xx`).
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Whether the store can execute the plan as compiled (no `E1xx`).
    pub fn is_servable(&self) -> bool {
        self.error_count() == 0
    }
}

/// The composite index a step's lookup goes through.
pub fn step_index_id(step: &PlanStep) -> IndexId {
    match step.kind {
        StepKind::XformInput => IndexId::XformIn,
        StepKind::XferSrc => IndexId::XferSrc,
    }
}

/// Checks every step of `plan` against the workflow specification and the
/// store's index catalog. Purely static: no trace data is touched, so the
/// check belongs to the paper's phase *s1* and its cost is independent of
/// trace size.
pub fn verify_plan(df: &Dataflow, plan: &LineagePlan, catalog: &IndexCatalog) -> PlanReport {
    let mut steps = Vec::with_capacity(plan.steps.len());
    let mut diagnostics = Vec::new();
    for (i, step) in plan.steps.iter().enumerate() {
        let id = step_index_id(step);
        let location = step_location(df, step);
        let resolved = resolve_step(df, step);
        let served = catalog.serves(id);
        if !resolved {
            diagnostics.push(Diagnostic {
                code: DiagCode::PlanSpecMismatch,
                location: location.clone(),
                message: format!(
                    "plan step {i} references {}:{}, which the specification does not define",
                    step.processor, step.port
                ),
                help: Some(
                    "the plan was compiled against a different specification; re-plan".into(),
                ),
            });
        }
        if !served {
            diagnostics.push(Diagnostic {
                code: DiagCode::UnservableIndex,
                location: location.clone(),
                message: format!("plan step {i} probes index `{id}`, which the store cannot serve"),
                help: Some(format!("re-plan against a store whose catalog lists `{id}`")),
            });
        }
        let class = if !resolved || !served {
            StepClass::FullScan
        } else {
            classify(step.index.len(), step.expected_depth)
        };
        if resolved && served {
            match class {
                StepClass::PointProbe => {}
                StepClass::FullScan => diagnostics.push(Diagnostic {
                    code: DiagCode::UncoveredStep,
                    location: location.clone(),
                    message: format!(
                        "plan step {i} probes `{id}` with no index components while stored \
                         rows are {} deep; every row of the port slice is read",
                        step.expected_depth
                    ),
                    help: Some("deepen the query index to narrow the lookup".into()),
                }),
                StepClass::SpanScan { missing } => diagnostics.push(Diagnostic {
                    code: DiagCode::SpanScanStep,
                    location: location.clone(),
                    message: format!(
                        "plan step {i} probes `{id}` at depth {} but rows are stored at \
                         depth {}; the lookup widens to a span scan over {missing} level(s)",
                        step.index.len(),
                        step.expected_depth
                    ),
                    help: None,
                }),
                StepClass::ClampedProbe { extra } => diagnostics.push(Diagnostic {
                    code: DiagCode::ClampedProbe,
                    location: location.clone(),
                    message: format!(
                        "plan step {i} probes `{id}` at depth {} but rows are stored at \
                         depth {}; {extra} residual component(s) clamp to ancestors",
                        step.index.len(),
                        step.expected_depth
                    ),
                    help: None,
                }),
            }
        }
        steps.push(VerifiedStep { step_index: i, index_id: id, class, served, resolved });
    }
    sort_diagnostics(&mut diagnostics);
    PlanReport { steps, diagnostics }
}

fn classify(got: usize, expected: usize) -> StepClass {
    use std::cmp::Ordering::*;
    match got.cmp(&expected) {
        Equal => StepClass::PointProbe,
        Less if got == 0 => StepClass::FullScan,
        Less => StepClass::SpanScan { missing: expected - got },
        Greater => StepClass::ClampedProbe { extra: got - expected },
    }
}

/// Whether the step's (scope-qualified) processor and port exist in the
/// specification the verifier was handed.
fn resolve_step(df: &Dataflow, step: &PlanStep) -> bool {
    match step.kind {
        StepKind::XformInput => {
            let mut cur = df;
            let segments: Vec<&str> = step.processor.as_str().split('/').collect();
            let (last, path) = match segments.split_last() {
                Some(v) => v,
                None => return false,
            };
            for seg in path {
                match cur.processor(&(*seg).into()).map(|p| &p.kind) {
                    Some(ProcessorKind::Nested { dataflow }) => cur = dataflow,
                    _ => return false,
                }
            }
            cur.processor(&(*last).into()).is_some_and(|p| p.input(&step.port).is_some())
        }
        StepKind::XferSrc => {
            if step.processor == df.name {
                return df.input(&step.port).is_some();
            }
            let mut cur = df;
            for seg in step.processor.as_str().split('/') {
                match cur.processor(&seg.into()).map(|p| &p.kind) {
                    Some(ProcessorKind::Nested { dataflow }) => cur = dataflow,
                    _ => return false,
                }
            }
            cur.input(&step.port).is_some()
        }
    }
}

/// The diagnostic anchor for a step: the innermost scope path plus the
/// port, matching the locations prov-dataflow's lints produce.
fn step_location(df: &Dataflow, step: &PlanStep) -> Location {
    match step.kind {
        StepKind::XformInput => {
            let segments: Vec<&str> = step.processor.as_str().split('/').collect();
            let (last, path) = segments.split_last().map(|(l, p)| (*l, p)).unwrap_or(("", &[]));
            let mut scope = df.name.to_string();
            for seg in path {
                scope.push('/');
                scope.push_str(seg);
            }
            Location {
                scope,
                node: NodeRef::InputPort {
                    processor: last.to_string(),
                    port: step.port.to_string(),
                },
            }
        }
        StepKind::XferSrc => {
            let scope = if step.processor == df.name {
                df.name.to_string()
            } else {
                format!("{}/{}", df.name, step.processor)
            };
            Location { scope, node: NodeRef::WorkflowInput(step.port.to_string()) }
        }
    }
}

/// Everything `tprov explain` prints about one query: the compiled plan,
/// the verifier's verdicts and the static cost prediction.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The compiled plan.
    pub plan: LineagePlan,
    /// Verifier verdicts and diagnostics.
    pub report: PlanReport,
    /// Per-port slice statistics backing the cost estimate, one per step
    /// (`None` for spec-only explanations, where no store is at hand).
    pub cardinalities: Vec<Option<PortCardinality>>,
    /// The static cost prediction.
    pub cost: CostEstimate,
}

impl Explanation {
    /// Whether the store can execute the plan as compiled (no `E1xx`).
    pub fn is_servable(&self) -> bool {
        self.report.is_servable()
    }
}

impl<'a> IndexProj<'a> {
    /// Compiles `query` and verifies the plan against `catalog`, with no
    /// trace statistics: the cost estimate covers index lookups only
    /// (exact) and predicts zero rows. This is the spec-only mode of
    /// `tprov explain`.
    pub fn explain(&self, query: &LineageQuery, catalog: &IndexCatalog) -> Result<Explanation> {
        self.explain_with(query, catalog, |_, _| None, &Obs::disabled())
    }

    /// Compiles `query` and verifies + costs the plan against a live
    /// store: the catalog and per-port cardinalities are read from `store`
    /// for `run`, so the row prediction is grounded in actual table
    /// statistics.
    pub fn explain_against(
        &self,
        query: &LineageQuery,
        store: &TraceStore,
        run: RunId,
        obs: &Obs,
    ) -> Result<Explanation> {
        let catalog = store.index_catalog();
        self.explain_with(
            query,
            &catalog,
            |step, id| Some(store.port_cardinality(id, run, &step.processor, &step.port)),
            obs,
        )
    }

    /// The general form: `stats` supplies per-step slice cardinalities
    /// (return `None` when unknown). Records an `explain.verify` span
    /// charging the paper's `t1` account — verification is pure graph
    /// work.
    pub fn explain_with(
        &self,
        query: &LineageQuery,
        catalog: &IndexCatalog,
        mut stats: impl FnMut(&PlanStep, IndexId) -> Option<PortCardinality>,
        obs: &Obs,
    ) -> Result<Explanation> {
        let plan = self.plan_with(query, obs)?;
        let mut span = obs.span("explain.verify", "t1");
        let report = verify_plan(self.dataflow(), &plan, catalog);
        let cardinalities: Vec<Option<PortCardinality>> =
            plan.steps.iter().zip(&report.steps).map(|(step, v)| stats(step, v.index_id)).collect();
        let cost = CostModel::default().estimate(&plan, &report, &cardinalities);
        span.arg("steps", plan.steps.len() as u64);
        span.arg("findings", report.diagnostics.len() as u64);
        span.stop();
        Ok(Explanation { plan, report, cardinalities, cost })
    }

    /// Pre-flight planning: compiles `query` and refuses to return the
    /// plan if the verifier finds error-level problems (`E1xx`) against
    /// `catalog`. Warning-level findings are returned alongside the plan.
    pub fn plan_checked(
        &self,
        query: &LineageQuery,
        catalog: &IndexCatalog,
    ) -> Result<(LineagePlan, PlanReport)> {
        let plan = self.plan(query)?;
        let report = verify_plan(self.dataflow(), &plan, catalog);
        if !report.is_servable() {
            return Err(CoreError::PlanRejected {
                findings: report.diagnostics.into_iter().filter(|d| d.is_error()).collect(),
            });
        }
        Ok((plan, report))
    }

    /// Plans with pre-flight verification against the store's own catalog
    /// and executes in one call — the checked counterpart of
    /// [`IndexProj::run`].
    pub fn run_checked(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
    ) -> Result<crate::LineageAnswer> {
        let (plan, _) = self.plan_checked(query, &store.index_catalog())?;
        plan.execute(store, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_engine::{BehaviorRegistry, Engine};
    use prov_model::{Index, PortRef, ProcessorName, Value};

    use crate::FocusSet;

    /// The paper's Fig. 3 workflow (same as in the planner's tests).
    fn fig3() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("v", PortType::list(BaseType::String));
        b.input("w", PortType::atom(BaseType::String));
        b.input("c", PortType::list(BaseType::String));
        b.processor("Q")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.processor("R")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("X1", PortType::atom(BaseType::String))
            .in_port("X2", PortType::list(BaseType::String))
            .in_port("X3", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.arc_from_input("v", "Q", "X").unwrap();
        b.arc_from_input("w", "R", "X").unwrap();
        b.arc_from_input("c", "P", "X2").unwrap();
        b.arc("Q", "Y", "P", "X1").unwrap();
        b.arc("R", "Y", "P", "X3").unwrap();
        b.output("y", PortType::atom(BaseType::String));
        b.arc_to_output("P", "Y", "y").unwrap();
        b.build().unwrap()
    }

    fn codes(report: &PlanReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn exact_query_verifies_as_all_point_probes() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[3, 5]),
            [ProcessorName::from("Q"), ProcessorName::from("R")],
        );
        let plan = ip.plan(&q).unwrap();
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert!(report.steps.iter().all(|s| s.class == StepClass::PointProbe));
        assert!(report.diagnostics.is_empty());
        assert!(report.is_servable());
    }

    #[test]
    fn empty_probe_over_deep_rows_is_a_w101_full_scan() {
        // lin(⟨P:Y[]⟩, {Q}): Q:X stores rows one level deep, but the
        // coarse query leaves the probe without index components — the
        // deliberately uncovered lookup of the acceptance fixture.
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::empty(),
            [ProcessorName::from("Q")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps[0].expected_depth, 1);
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert_eq!(report.steps[0].class, StepClass::FullScan);
        assert_eq!(codes(&report), vec!["W101"]);
        assert!(report.is_servable(), "W101 is a warning, not an error");
    }

    #[test]
    fn shallow_probe_is_a_w102_span_scan() {
        // Q consumes a depth-2 input through an atom port (mismatch 2), so
        // its rows sit two levels deep; probing with one component scans.
        let mut b = DataflowBuilder::new("wf");
        b.input("vv", PortType::nested(BaseType::String, 2));
        b.processor("Q")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.arc_from_input("vv", "Q", "X").unwrap();
        b.output("y", PortType::nested(BaseType::String, 2));
        b.arc_to_output("Q", "Y", "y").unwrap();
        let df = b.build().unwrap();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("Q", "Y"),
            Index::single(1),
            [ProcessorName::from("Q")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps[0].expected_depth, 2);
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert_eq!(report.steps[0].class, StepClass::SpanScan { missing: 1 });
        assert_eq!(codes(&report), vec!["W102"]);
    }

    #[test]
    fn deep_probe_is_a_w103_clamped_probe() {
        // lin(⟨wf:v[1,2]⟩): v is a flat list, so xfer rows are one level
        // deep; the second component cannot discriminate.
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("wf", "v"),
            Index::from_slice(&[1, 2]),
            [ProcessorName::from("wf")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps[0].expected_depth, 1);
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert_eq!(report.steps[0].class, StepClass::ClampedProbe { extra: 1 });
        assert_eq!(codes(&report), vec!["W103"]);
    }

    #[test]
    fn missing_index_is_an_e101_and_preflight_rejects_the_plan() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[3, 5]),
            [ProcessorName::from("Q"), ProcessorName::from("R")],
        );
        let plan = ip.plan(&q).unwrap();
        let catalog = IndexCatalog::assume_full().without(IndexId::XformIn);
        let report = verify_plan(&df, &plan, &catalog);
        assert_eq!(codes(&report), vec!["E101", "E101"]);
        assert!(report.steps.iter().all(|s| s.class == StepClass::FullScan && !s.served));
        assert!(!report.is_servable());
        match ip.plan_checked(&q, &catalog) {
            Err(CoreError::PlanRejected { findings }) => {
                assert!(findings.iter().all(|d| d.code.as_str() == "E101"));
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
        // With the full catalog the same query sails through pre-flight.
        assert!(ip.plan_checked(&q, &IndexCatalog::assume_full()).is_ok());
    }

    #[test]
    fn foreign_plan_is_an_e102_spec_mismatch() {
        let df = fig3();
        let plan = LineagePlan {
            steps: vec![PlanStep {
                kind: StepKind::XformInput,
                processor: ProcessorName::from("ZZ"),
                port: Arc::from("X"),
                index: Index::empty(),
                expected_depth: 0,
            }],
            nodes_visited: 0,
        };
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert_eq!(codes(&report), vec!["E102"]);
        assert!(!report.is_servable());
        assert!(!report.steps[0].resolved);
    }

    #[test]
    fn expected_depths_accumulate_through_nested_scopes() {
        let mut inner = DataflowBuilder::new("sub");
        inner.input("a", PortType::atom(BaseType::String));
        inner
            .processor("T")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        inner.arc_from_input("a", "T", "x").unwrap();
        inner.output("y", PortType::atom(BaseType::String));
        inner.arc_to_output("T", "y", "y").unwrap();

        let mut b = DataflowBuilder::new("wf");
        b.input("v", PortType::list(BaseType::String));
        b.nested("S", Arc::new(inner.build().unwrap()));
        b.arc_from_input("v", "S", "a").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("S", "y", "out").unwrap();
        let df = b.build().unwrap();

        let ip = IndexProj::new(&df);
        let q = LineageQuery {
            target: PortRef::new("S", "y"),
            index: Index::single(1),
            focus: FocusSet::from_names([
                ProcessorName::from("S/T"),
                ProcessorName::from("S"),
                ProcessorName::from("wf"),
            ]),
        };
        let plan = ip.plan(&q).unwrap();
        // S iterates once over v, so every stored row inside the scope —
        // T's input binding, the scope-input xfer, and the top-level xfer
        // from v — sits exactly one level deep.
        assert_eq!(plan.steps.len(), 3);
        for step in &plan.steps {
            assert_eq!(step.expected_depth, 1, "step {:?}", step);
        }
        let report = verify_plan(&df, &plan, &IndexCatalog::assume_full());
        assert!(report.steps.iter().all(|s| s.class == StepClass::PointProbe));
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn explain_against_a_live_store_grounds_the_estimate_and_checks_out() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("A", "string_upper")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "A", "x").unwrap();
        b.output("upper", PortType::list(BaseType::String));
        b.arc_to_output("A", "y", "upper").unwrap();
        let df = b.build().unwrap();
        let store = TraceStore::in_memory();
        let run = Engine::new(BehaviorRegistry::new().with_builtins())
            .execute(&df, vec![("in".into(), Value::from(vec!["a", "b", "c"]))], &store)
            .unwrap()
            .run_id;

        let ip = IndexProj::new(&df);
        let q = LineageQuery::unfocused(PortRef::new("wf", "upper"), Index::single(1), &df);
        let ex = ip.explain_against(&q, &store, run, &Obs::disabled()).unwrap();
        assert!(ex.is_servable());
        assert!(ex.cost.grounded);

        let before = store.stats().snapshot();
        ex.plan.execute(&store, run).unwrap();
        let delta = store.stats().snapshot().since(before);
        assert_eq!(ex.cost.index_lookups, delta.index_lookups, "lookup model is exact");
        let actual_rows = delta.records_read + delta.rows_scanned;
        let chk = ex.cost.check(delta.index_lookups, actual_rows, 10.0);
        assert!(chk.ok, "{chk:?}");
        assert!(ex.cost.rows_scanned >= actual_rows, "prediction is an upper bound");
    }
}
