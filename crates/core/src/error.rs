//! Lineage query errors.

use std::fmt;

use prov_dataflow::DataflowError;
use prov_store::StoreError;

/// Errors raised by lineage query processing.
#[derive(Debug)]
pub enum CoreError {
    /// The workflow specification is invalid or lacks the queried port.
    Dataflow(DataflowError),
    /// The trace store failed.
    Store(StoreError),
    /// The query's target port is not a workflow output or processor output
    /// of the given dataflow.
    UnknownTarget {
        /// Rendered `P:Y` reference.
        target: String,
    },
    /// The plan verifier found error-level problems (`E1xx`): the store
    /// cannot execute the plan as compiled.
    PlanRejected {
        /// The error-level findings, in stable diagnostic order.
        findings: Vec<prov_dataflow::Diagnostic>,
    },
    /// A [`QueryCtx`](prov_obs::QueryCtx) deadline passed mid-execution;
    /// the query was abandoned between steps. Work already performed is
    /// still reflected in the store counters and journal.
    DeadlineExceeded {
        /// The query's source text.
        query: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dataflow(e) => write!(f, "{e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::UnknownTarget { target } => {
                write!(f, "query target {target} is not a port of this workflow")
            }
            CoreError::PlanRejected { findings } => {
                write!(f, "plan rejected by the verifier: {} finding(s)", findings.len())?;
                for d in findings {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            CoreError::DeadlineExceeded { query } => {
                write!(f, "query {query:?} abandoned: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DataflowError> for CoreError {
    fn from(e: DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = CoreError::UnknownTarget { target: "P:Y".into() };
        assert!(e.to_string().contains("P:Y"));
        let e: CoreError = DataflowError::UnknownProcessor("Z".into()).into();
        assert!(matches!(e, CoreError::Dataflow(_)));
    }
}
