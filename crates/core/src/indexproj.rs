//! **INDEXPROJ** (§3.3, Algorithm 2): lineage by traversal of the workflow
//! *specification* graph.
//!
//! The extensional inversion of the naïve algorithm — "find the xform
//! event matching this output binding" — is replaced by the intensional
//! index projection rule (Def. 4): because Prop. 1 guarantees
//! `q = p1 · … · pn` with `|p_i| = max(δ_s(X_i), 0)`, an output index can
//! be apportioned to the input ports *without touching the trace at all*.
//! The trace is consulted only at the interesting processors `𝒫`, with one
//! indexed lookup `Q(P, X_i, p_i)` each.
//!
//! The traversal produces a [`LineagePlan`]: the finite list of trace
//! lookups the query requires. Building the plan is the paper's phase
//! *s1*; executing it against a run is phase *s2*. The plan depends only on
//! the workflow graph, the target, the index and `𝒫` — not on any run —
//! so one plan serves any number of runs (§3.4) and can be cached across
//! queries ([`crate::PlanCache`]).
//!
//! Nested dataflows are traversed transparently: the engine records
//! scope-boundary events with absolute indices, and the traversal descends
//! into a nested workflow's specification carrying the enclosing iteration
//! fragments, so granularity survives arbitrary nesting.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use prov_dataflow::{ArcDst, ArcSrc, Dataflow, DepthInfo, ProcessorKind};
use prov_model::{Binding, Index, ProcessorName, RunId};
use prov_obs::{JournalEvent, Obs, QueryCtx};
use prov_store::{ProbeStats, ReadView, TraceStore};

use crate::{CoreError, CostEstimate, FocusSet, LineageAnswer, LineageQuery, Result};

/// What a plan step reads from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepKind {
    /// `Q(P, X_i, p_i)`: the stored xform **input** bindings of a focused
    /// processor port.
    XformInput,
    /// The xfer **source** bindings of a workflow-scope input port (top
    /// level or nested scope) — such ports never appear in xform rows.
    XferSrc,
}

/// One trace lookup of a compiled lineage query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanStep {
    /// Which lookup.
    pub kind: StepKind,
    /// Scope-qualified processor (or workflow-scope) name.
    pub processor: ProcessorName,
    /// Port name.
    pub port: std::sync::Arc<str>,
    /// The projected index `p_i` (absolute).
    pub index: Index,
    /// Length of the element indexes the engine stores for this port under
    /// fine-grained recording — the depth at which `index` would be a point
    /// probe. A shorter `index` (coarse query) widens the lookup to a span
    /// scan; a longer one clamps to ancestors. Derived purely from the
    /// specification (Algorithm 1 depths plus scope offsets), so the plan
    /// verifier can classify every step without touching the trace.
    pub expected_depth: usize,
}

/// A compiled lineage query: the trace lookups it requires, plus the
/// accounting of the graph traversal that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineagePlan {
    /// The lookups, in traversal order, deduplicated.
    pub steps: Vec<PlanStep>,
    /// Specification-graph nodes visited while planning (phase s1 work).
    pub nodes_visited: usize,
}

impl LineagePlan {
    /// One step's resolved bindings — independent of every other step, so
    /// steps can execute in any order or concurrently. Reads only the
    /// pinned view: no store lock is touched. Probe work accumulates into
    /// `probe` (the caller owns the flush into the shared counters), so
    /// each step's exact cost is attributable even when steps run
    /// concurrently on worker threads.
    fn step_bindings(
        view: &ReadView,
        step: &PlanStep,
        probe: &mut ProbeStats,
    ) -> Result<Vec<Binding>> {
        let stored = match step.kind {
            StepKind::XformInput => {
                view.input_bindings_stats(&step.processor, &step.port, &step.index, probe)
            }
            StepKind::XferSrc => {
                view.xfer_src_bindings_stats(&step.processor, &step.port, &step.index, probe)
            }
        };
        stored.iter().map(|b| view.resolve(b).map_err(CoreError::Store)).collect()
    }

    /// Executes the plan against one run (phase *s2*): one indexed trace
    /// query per step. Large plans fan their (mutually independent) steps
    /// out across scoped threads; results are recombined in step order, so
    /// the answer — and which error surfaces, if any — is identical to the
    /// sequential loop's.
    pub fn execute(&self, store: &TraceStore, run: RunId) -> Result<LineageAnswer> {
        self.execute_with(store, run, &Obs::disabled())
    }

    /// [`LineagePlan::execute`] with observability: each step records an
    /// `indexproj.step` span charging the paper's `t2` account, and answer
    /// assembly records an `indexproj.assemble` span charging `t1`.
    ///
    /// The run's trace is pinned once ([`TraceStore::pin`], one brief read
    /// lock); every step then probes the immutable snapshot lock-free.
    pub fn execute_with(&self, store: &TraceStore, run: RunId, obs: &Obs) -> Result<LineageAnswer> {
        self.execute_pinned(&store.pin(run), obs)
    }

    /// [`LineagePlan::execute_with`] under a [`QueryCtx`]: journal events
    /// (`QueryStarted`/`PlanStep`/`QueryFinished`) are stamped with the
    /// context's trace id, the deadline is enforced between steps, and the
    /// attached cost prediction (if any) is drift-checked on completion.
    pub fn execute_ctx(
        &self,
        store: &TraceStore,
        run: RunId,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<LineageAnswer> {
        self.execute_pinned_ctx(&store.pin(run), obs, ctx)
    }

    /// Executes the plan against an already-pinned read snapshot. The
    /// answer is for the view's run *as of the pin*: events recorded after
    /// [`TraceStore::pin`] returned are not visible, which makes answers
    /// stable even while an engine is streaming into the same store.
    pub fn execute_pinned(&self, view: &ReadView, obs: &Obs) -> Result<LineageAnswer> {
        self.execute_view(view, obs, self.steps.len() >= crate::par::STEP_FANOUT_MIN, None)
    }

    /// [`LineagePlan::execute_pinned`] under a [`QueryCtx`].
    pub fn execute_pinned_ctx(
        &self,
        view: &ReadView,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<LineageAnswer> {
        self.execute_view(view, obs, self.steps.len() >= crate::par::STEP_FANOUT_MIN, Some(ctx))
    }

    /// Each step counts its probe work into a step-local [`ProbeStats`]
    /// (flushed into the shared counters exactly once, on drop — early
    /// returns and panics included), so span arguments and `PlanStep`
    /// journal events carry the step's *exact* cost even when steps fan
    /// out across worker threads under `TPROV_QUERY_THREADS`.
    fn execute_view(
        &self,
        view: &ReadView,
        obs: &Obs,
        fan_steps: bool,
        ctx: Option<&QueryCtx>,
    ) -> Result<LineageAnswer> {
        use std::time::Instant;
        let profiling = obs.profiler.is_enabled();
        let observing = profiling || ctx.is_some();
        let started = Instant::now();
        let run_u64 = view.run().0;
        if let Some(c) = ctx {
            obs.journal
                .record(JournalEvent::QueryStarted { trace: c.trace, query: c.query.clone() });
        }
        // (bindings, step-local probe counters, step duration).
        type StepOut = (Vec<Binding>, ProbeStats, u64);
        let timed_step = |&(idx, step): &(usize, &PlanStep)| -> Result<StepOut> {
            if let Some(c) = ctx {
                if c.deadline_exceeded() {
                    return Err(CoreError::DeadlineExceeded { query: c.query.clone() });
                }
            }
            if !observing {
                let mut guard = view.probe_guard();
                let out = Self::step_bindings(view, step, &mut guard)?;
                return Ok((out, ProbeStats::new(), 0));
            }
            let before = Instant::now();
            let mut span = obs.span("indexproj.step", "t2");
            let local = {
                let mut guard = view.probe_guard();
                let out = Self::step_bindings(view, step, &mut guard);
                (out, guard.so_far())
                // guard drops here: the step's counters reach the shared
                // totals even when `out` is an error.
            };
            let (out, local) = local;
            let dur_ns = before.elapsed().as_nanos() as u64;
            span.arg("index_lookups", local.index_lookups);
            span.arg("records_read", local.records_read);
            span.arg("rows_scanned", local.rows_scanned);
            let rows = out.as_ref().map_or(0, |r| r.len() as u64);
            if out.is_ok() {
                span.arg("rows", rows);
            }
            if let Some(c) = ctx {
                obs.journal.record(JournalEvent::PlanStep {
                    trace: c.trace,
                    run: run_u64,
                    step: idx as u32,
                    index_lookups: local.index_lookups,
                    records_read: local.records_read,
                    rows_scanned: local.rows_scanned,
                    rows,
                    dur_ns,
                });
            }
            out.map(|b| (b, local, dur_ns))
        };
        let indexed: Vec<(usize, &PlanStep)> = self.steps.iter().enumerate().collect();
        let per_step: Vec<Result<StepOut>> = if fan_steps {
            crate::par::parallel_map(&indexed, timed_step)
        } else {
            indexed.iter().map(timed_step).collect()
        };
        let mut assemble = obs.span("indexproj.assemble", "t1");
        let mut bindings: Vec<Binding> = Vec::new();
        let mut totals = ProbeStats::new();
        let mut t2_ns = 0u64;
        for step_result in per_step {
            let (step_bindings, local, dur_ns) = step_result?;
            totals.index_lookups += local.index_lookups;
            totals.records_read += local.records_read;
            totals.rows_scanned += local.rows_scanned;
            t2_ns += dur_ns;
            bindings.extend(step_bindings);
        }
        assemble.arg("bindings", bindings.len() as u64);
        assemble.stop();
        if let Some(c) = ctx {
            let dur = started.elapsed();
            let dur_ns = dur.as_nanos() as u64;
            let actual_rows = totals.records_read + totals.rows_scanned;
            let drift = match (c.predicted_lookups, c.predicted_rows) {
                (Some(lookups), Some(rows)) => {
                    let est = CostEstimate {
                        per_step: vec![],
                        index_lookups: lookups,
                        rows_scanned: rows,
                        grounded: c.rows_grounded,
                    };
                    !est.check(totals.index_lookups, actual_rows, c.tolerance).ok
                }
                _ => false,
            };
            obs.journal.record(JournalEvent::QueryFinished {
                trace: c.trace,
                run: run_u64,
                fingerprint: c.fingerprint,
                steps: self.steps.len() as u32,
                bindings: bindings.len() as u64,
                // Under fan-out t2 sums worker time, which can exceed the
                // wall clock; t1 is the remainder when there is one.
                t1_ns: dur_ns.saturating_sub(t2_ns),
                t2_ns,
                dur_ns,
                index_lookups: totals.index_lookups,
                records_read: totals.records_read,
                rows_scanned: totals.rows_scanned,
                predicted_lookups: c.predicted_lookups,
                predicted_rows: c.predicted_rows,
                drift,
                slow: c.is_slow(dur),
            });
        }
        Ok(LineageAnswer::new(view.run(), bindings, self.steps.len(), self.nodes_visited))
    }

    /// Executes the plan against several runs, sharing the (already paid)
    /// planning phase — the multi-run scenario of §3.4 and Fig. 4. Enough
    /// runs are executed concurrently, one plan shared by all workers;
    /// answers come back in run order and any error is reported for the
    /// lowest failing run index, exactly as sequentially.
    pub fn execute_multi(&self, store: &TraceStore, runs: &[RunId]) -> Result<Vec<LineageAnswer>> {
        self.execute_multi_with(store, runs, &Obs::disabled())
    }

    /// [`LineagePlan::execute_multi`] with observability. The `Obs` handle
    /// is shared by every worker thread; spans land on one timeline with
    /// per-worker `tid`s, so aggregated totals equal the sequential run's.
    ///
    /// Each worker pins its run's snapshot up front and runs the plan's
    /// steps *sequentially* against it: with one worker per run there is
    /// nothing left to gain from nested step fan-out, and suppressing it
    /// keeps the thread count bounded by the pool size instead of its
    /// square. After the pin, a worker acquires **zero** locks.
    pub fn execute_multi_with(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        obs: &Obs,
    ) -> Result<Vec<LineageAnswer>> {
        self.execute_multi_inner(store, runs, obs, None)
    }

    /// [`LineagePlan::execute_multi_with`] under a [`QueryCtx`]: every
    /// run's execution shares the context's trace id and emits its own
    /// `QueryFinished` (carrying the run id), so a multi-run sweep
    /// reassembles into per-run totals from the journal alone.
    pub fn execute_multi_ctx(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<Vec<LineageAnswer>> {
        self.execute_multi_inner(store, runs, obs, Some(ctx))
    }

    fn execute_multi_inner(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        obs: &Obs,
        ctx: Option<&QueryCtx>,
    ) -> Result<Vec<LineageAnswer>> {
        if runs.len() >= crate::par::RUN_FANOUT_MIN {
            crate::par::parallel_map(runs, |&r| self.execute_view(&store.pin(r), obs, false, ctx))
                .into_iter()
                .collect()
        } else {
            // Few runs: keep the per-run step fan-out decision of the
            // single-run path.
            let fan = self.steps.len() >= crate::par::STEP_FANOUT_MIN;
            runs.iter().map(|&r| self.execute_view(&store.pin(r), obs, fan, ctx)).collect()
        }
    }
}

/// The INDEXPROJ query processor for one workflow.
#[derive(Debug)]
pub struct IndexProj<'a> {
    df: &'a Dataflow,
    depths: OnceLock<Arc<DepthInfo>>,
}

impl<'a> IndexProj<'a> {
    /// A query processor over the given workflow specification.
    pub fn new(df: &'a Dataflow) -> Self {
        IndexProj { df, depths: OnceLock::new() }
    }

    /// The workflow specification this processor plans against.
    pub fn dataflow(&self) -> &'a Dataflow {
        self.df
    }

    /// The (memoised) result of Algorithm 1 for the top-level workflow.
    fn depth_info(&self) -> Result<Arc<DepthInfo>> {
        if let Some(d) = self.depths.get() {
            return Ok(Arc::clone(d));
        }
        let computed = Arc::new(DepthInfo::compute(self.df)?);
        let _ = self.depths.set(Arc::clone(&computed));
        Ok(computed)
    }

    /// Compiles `query` into a [`LineagePlan`] (phase *s1*).
    pub fn plan(&self, query: &LineageQuery) -> Result<LineagePlan> {
        self.plan_with(query, &Obs::disabled())
    }

    /// [`IndexProj::plan`] with observability: records one
    /// `indexproj.plan` span charging the paper's `t1` account (pure
    /// graph work, no trace access), with the compiled plan's size as
    /// arguments.
    pub fn plan_with(&self, query: &LineageQuery, obs: &Obs) -> Result<LineagePlan> {
        let mut span = obs.span("indexproj.plan", "t1");
        let plan = self.plan_inner(query)?;
        span.arg("steps", plan.steps.len() as u64);
        span.arg("nodes_visited", plan.nodes_visited as u64);
        span.stop();
        Ok(plan)
    }

    fn plan_inner(&self, query: &LineageQuery) -> Result<LineagePlan> {
        let depths = self.depth_info()?;
        let mut builder = PlanBuilder {
            focus: &query.focus,
            steps: Vec::new(),
            seen_steps: HashSet::new(),
            visited: HashSet::new(),
        };
        let scope = Scope {
            df: self.df,
            depths,
            prefix: String::new(),
            scope_name: self.df.name.clone(),
            global: Index::empty(),
            expected_global_len: 0,
            outer: None,
        };

        if query.target.processor == self.df.name {
            // A workflow-interface port.
            if self.df.output(&query.target.port).is_some() {
                builder.visit_wf_output(&scope, &query.target.port, &query.index)?;
            } else if self.df.input(&query.target.port).is_some() {
                // Lineage of an input is the input itself.
                builder.visit_wf_input(&scope, &query.target.port, &query.index)?;
            } else {
                return Err(CoreError::UnknownTarget { target: query.target.to_string() });
            }
        } else {
            let p = self
                .df
                .processor(&query.target.processor)
                .ok_or_else(|| CoreError::UnknownTarget { target: query.target.to_string() })?;
            if p.output(&query.target.port).is_none() {
                return Err(CoreError::UnknownTarget { target: query.target.to_string() });
            }
            builder.visit_output(
                &scope,
                &query.target.processor,
                &query.target.port,
                &query.index,
            )?;
        }

        Ok(LineagePlan { steps: builder.steps, nodes_visited: builder.visited.len() })
    }

    /// Plans and executes in one call.
    pub fn run(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
    ) -> Result<LineageAnswer> {
        self.plan(query)?.execute(store, run)
    }

    /// Plans and executes in one call, with observability (spans for the
    /// *s1* planning phase and each *s2* step).
    pub fn run_with(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
        obs: &Obs,
    ) -> Result<LineageAnswer> {
        self.plan_with(query, obs)?.execute_with(store, run, obs)
    }

    /// Plans once and executes over several runs.
    pub fn run_multi(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
    ) -> Result<Vec<LineageAnswer>> {
        self.plan(query)?.execute_multi(store, runs)
    }

    /// Plans once and executes over several runs, with observability.
    pub fn run_multi_with(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
        obs: &Obs,
    ) -> Result<Vec<LineageAnswer>> {
        self.plan_with(query, obs)?.execute_multi_with(store, runs, obs)
    }

    /// Plans and executes under a [`QueryCtx`] (trace-id stamping,
    /// deadline enforcement, drift check — see
    /// [`LineagePlan::execute_ctx`]).
    pub fn run_ctx(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<LineageAnswer> {
        self.plan_with(query, obs)?.execute_ctx(store, run, obs, ctx)
    }
}

/// One (possibly nested) workflow scope during plan construction.
struct Scope<'b> {
    df: &'b Dataflow,
    depths: Arc<DepthInfo>,
    /// Prefix for inner processor names (`""` at top, `"N/"` inside N, …).
    prefix: String,
    /// The scope's own qualified name (workflow name at top, the nested
    /// processor's qualified name inside).
    scope_name: ProcessorName,
    /// The global index prefix the engine applied to every event recorded
    /// in this scope (empty at top level; `G_outer · q` inside an
    /// invocation with iteration index `q`).
    global: Index,
    /// Length the engine's global prefix has at *full* granularity: the
    /// sum of the enclosing layouts' iteration totals. `global.len()` can
    /// be shorter when the query index is coarse; stored rows always carry
    /// the full-length prefix, so expected depths build on this.
    expected_global_len: usize,
    /// Link to the enclosing scope, if any.
    outer: Option<Outer<'b>>,
}

impl Scope<'_> {
    /// Strips this scope's global prefix from an absolute index (clamping
    /// when a coarse query index is shorter than the prefix).
    fn relative(&self, index: &Index) -> Index {
        index.project(self.global.len(), index.len().saturating_sub(self.global.len()))
    }
}

/// How a nested scope reconnects to its enclosing graph.
struct Outer<'b> {
    scope: &'b Scope<'b>,
    /// Local name of the nested processor within the outer dataflow.
    nested_local: ProcessorName,
    /// Per inner-input port: the absolute iteration fragment of the element
    /// this descent followed.
    fragments: HashMap<std::sync::Arc<str>, Index>,
    /// Per inner-input port: the length the fragment has at full
    /// granularity (outer `expected_global_len` plus the port's static
    /// fragment length), regardless of how coarse the query index is.
    expected_fragments: HashMap<std::sync::Arc<str>, usize>,
}

struct PlanBuilder<'q> {
    focus: &'q FocusSet,
    steps: Vec<PlanStep>,
    seen_steps: HashSet<PlanStep>,
    visited: HashSet<(ProcessorName, std::sync::Arc<str>, Index)>,
}

impl PlanBuilder<'_> {
    fn push_step(&mut self, step: PlanStep) {
        if self.seen_steps.insert(step.clone()) {
            self.steps.push(step);
        }
    }

    fn qualify(prefix: &str, name: &str) -> ProcessorName {
        if prefix.is_empty() {
            ProcessorName::from(name)
        } else {
            ProcessorName::from(format!("{prefix}{name}"))
        }
    }

    /// Entry through a workflow output port: follow its single arc.
    fn visit_wf_output(&mut self, scope: &Scope<'_>, port: &str, index: &Index) -> Result<()> {
        let arc = match scope.df.arc_into_output(port) {
            Some(a) => a,
            None => return Ok(()), // unbound output: no lineage
        };
        match &arc.src {
            ArcSrc::WorkflowInput { port: p } => self.visit_wf_input(scope, p, index),
            ArcSrc::Processor { processor, port: p } => {
                self.visit_output(scope, processor, p, index)
            }
        }
    }

    /// A processor output port at `index`: apply the index projection rule
    /// and keep walking the specification graph.
    fn visit_output(
        &mut self,
        scope: &Scope<'_>,
        local: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Result<()> {
        let qualified = Self::qualify(&scope.prefix, local.as_str());
        if !self.visited.insert((qualified.clone(), std::sync::Arc::from(port), index.clone())) {
            return Ok(());
        }
        let p = scope.df.processor_required(local).map_err(CoreError::Dataflow)?;
        let layout = scope
            .depths
            .layout_of(local)
            .ok_or_else(|| {
                CoreError::Dataflow(prov_dataflow::DataflowError::UnknownProcessor(
                    local.to_string(),
                ))
            })?
            .clone();
        // Only the first `total` components (past the scope's global
        // prefix) of the output index come from iteration; anything deeper
        // addresses structure inside the declared output value, which a
        // black box cannot be inverted through (coarse fallback, exactly
        // as in the paper).
        let rel = scope.relative(index);
        let qn = rel.prefix(layout.total);

        match &p.kind {
            ProcessorKind::Task { .. } => {
                let focused = self.focus.contains(&qualified);
                for (pos, input) in p.inputs.iter().enumerate() {
                    let (off, len) = layout.fragment_of(pos);
                    let pi = scope.global.concat(&qn.project(off, len));
                    if focused {
                        self.push_step(PlanStep {
                            kind: StepKind::XformInput,
                            processor: qualified.clone(),
                            port: input.name.clone(),
                            index: pi.clone(),
                            // The engine stores one xform-input row per
                            // elementary invocation at global · fragment.
                            expected_depth: scope.expected_global_len + len,
                        });
                    }
                    self.visit_input(scope, local, &input.name, &pi)?;
                }
            }
            ProcessorKind::Nested { dataflow } => {
                // Residual index inside the nested workflow's output value.
                let r = rel.project(layout.total, rel.len().saturating_sub(layout.total));
                let inner_global = scope.global.concat(&qn);
                // Absolute iteration fragments per inner input port.
                let mut fragments: HashMap<std::sync::Arc<str>, Index> = HashMap::new();
                let mut expected_fragments: HashMap<std::sync::Arc<str>, usize> = HashMap::new();
                for (pos, input) in p.inputs.iter().enumerate() {
                    let (off, len) = layout.fragment_of(pos);
                    fragments
                        .insert(input.name.clone(), scope.global.concat(&qn.project(off, len)));
                    expected_fragments.insert(input.name.clone(), scope.expected_global_len + len);
                }
                let inner_scope = Scope {
                    df: dataflow.as_ref(),
                    depths: Arc::new(DepthInfo::compute(dataflow).map_err(CoreError::Dataflow)?),
                    prefix: format!("{}{}/", scope.prefix, local.as_str()),
                    scope_name: qualified.clone(),
                    global: inner_global.clone(),
                    expected_global_len: scope.expected_global_len + layout.total,
                    outer: Some(Outer {
                        scope,
                        nested_local: local.clone(),
                        fragments,
                        expected_fragments,
                    }),
                };
                self.visit_wf_output(&inner_scope, port, &inner_global.concat(&r))?;
            }
        }
        Ok(())
    }

    /// A processor input port: follow its incoming arc backwards.
    fn visit_input(
        &mut self,
        scope: &Scope<'_>,
        local: &ProcessorName,
        port: &str,
        index: &Index,
    ) -> Result<()> {
        // Also continue through any arc that feeds a *workflow output*
        // from this processor? No: lineage walks upstream only.
        let arc = scope.df.arcs.iter().find(|a| {
            matches!(&a.dst, ArcDst::Processor { processor, port: q }
                if processor == local && &**q == port)
        });
        let Some(arc) = arc else {
            return Ok(()); // default-valued port: nothing upstream
        };
        match &arc.src {
            ArcSrc::WorkflowInput { port: p } => self.visit_wf_input(scope, p, index),
            ArcSrc::Processor { processor, port: p } => {
                self.visit_output(scope, processor, p, index)
            }
        }
    }

    /// A workflow-scope input port, reached at a scope-absolute `index`
    /// (i.e. carrying this scope's global prefix).
    fn visit_wf_input(&mut self, scope: &Scope<'_>, port: &str, index: &Index) -> Result<()> {
        // Re-base onto the enclosing value: replace the scope's global
        // prefix with the port's own iteration fragment.
        let absolute = match &scope.outer {
            Some(outer) => outer
                .fragments
                .get(port)
                .cloned()
                .unwrap_or_default()
                .concat(&scope.relative(index)),
            None => index.clone(),
        };
        if !self.visited.insert((
            scope.scope_name.clone(),
            std::sync::Arc::from(port),
            absolute.clone(),
        )) {
            return Ok(());
        }
        if self.focus.contains(&scope.scope_name) {
            // Fine-granularity xfer rows sit at offset · leaf, where the
            // leaf index is as deep as the port's declared value.
            let declared = scope.df.input(port).map(|p| p.declared.depth).unwrap_or(0);
            let base = match &scope.outer {
                Some(outer) => outer.expected_fragments.get(port).copied().unwrap_or(0),
                None => 0,
            };
            self.push_step(PlanStep {
                kind: StepKind::XferSrc,
                processor: scope.scope_name.clone(),
                port: std::sync::Arc::from(port),
                index: absolute.clone(),
                expected_depth: base + declared,
            });
        }
        if let Some(outer) = &scope.outer {
            // Continue upstream in the enclosing graph.
            self.visit_input(outer.scope, &outer.nested_local, port, &absolute)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_model::PortRef;

    /// The paper's Fig. 3 workflow (same as in prov-dataflow's tests).
    fn fig3() -> Dataflow {
        let mut b = DataflowBuilder::new("wf");
        b.input("v", PortType::list(BaseType::String));
        b.input("w", PortType::atom(BaseType::String));
        b.input("c", PortType::list(BaseType::String));
        b.processor("Q")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.processor("R")
            .in_port("X", PortType::atom(BaseType::String))
            .out_port("Y", PortType::list(BaseType::String));
        b.processor("P")
            .in_port("X1", PortType::atom(BaseType::String))
            .in_port("X2", PortType::list(BaseType::String))
            .in_port("X3", PortType::atom(BaseType::String))
            .out_port("Y", PortType::atom(BaseType::String));
        b.arc_from_input("v", "Q", "X").unwrap();
        b.arc_from_input("w", "R", "X").unwrap();
        b.arc_from_input("c", "P", "X2").unwrap();
        b.arc("Q", "Y", "P", "X1").unwrap();
        b.arc("R", "Y", "P", "X3").unwrap();
        b.output("y", PortType::atom(BaseType::String));
        b.arc_to_output("P", "Y", "y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn plan_projects_fig3_indices_as_in_the_paper() {
        // lin(⟨P:Y[h,l]⟩, {Q,R}) should plan Q:X at [h] and R:X at [].
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[3, 5]),
            [ProcessorName::from("Q"), ProcessorName::from("R")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps.len(), 2);
        let q_step = plan.steps.iter().find(|s| s.processor.as_str() == "Q").unwrap();
        assert_eq!(q_step.kind, StepKind::XformInput);
        assert_eq!(&*q_step.port, "X");
        assert_eq!(q_step.index, Index::single(3)); // [h]
        let r_step = plan.steps.iter().find(|s| s.processor.as_str() == "R").unwrap();
        assert_eq!(r_step.index, Index::empty()); // R consumed w whole
    }

    #[test]
    fn coarse_query_projects_empty_indices() {
        // lin(⟨P:Y[]⟩, {Q,R}): everything coarse (the paper's second
        // worked example in §2.4).
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::empty(),
            [ProcessorName::from("Q"), ProcessorName::from("R")],
        );
        let plan = ip.plan(&q).unwrap();
        assert!(plan.steps.iter().all(|s| s.index.is_empty()));
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn unfocused_plan_touches_every_processor() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::unfocused(PortRef::new("wf", "y"), Index::from_slice(&[0, 0]), &df);
        let plan = ip.plan(&q).unwrap();
        // Steps for P (3 ports), Q (1), R (1) and the three workflow inputs.
        let procs: HashSet<&str> = plan.steps.iter().map(|s| s.processor.as_str()).collect();
        assert_eq!(procs, HashSet::from(["P", "Q", "R", "wf"]));
        assert_eq!(plan.steps.len(), 3 + 1 + 1 + 3);
    }

    #[test]
    fn plan_size_is_independent_of_index_values() {
        // Plans for different concrete indices have the same shape — the
        // cost is constant in d (Fig. 9's flat INDEXPROJ lines).
        let df = fig3();
        let ip = IndexProj::new(&df);
        for idx in [[0u32, 0], [7, 9], [100, 100]] {
            let q = LineageQuery::focused(
                PortRef::new("P", "Y"),
                Index::from_slice(&idx),
                [ProcessorName::from("Q")],
            );
            let plan = ip.plan(&q).unwrap();
            assert_eq!(plan.steps.len(), 1);
            assert_eq!(plan.steps[0].index, Index::single(idx[0]));
        }
    }

    #[test]
    fn unknown_target_is_rejected() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        for target in
            [PortRef::new("nope", "Y"), PortRef::new("P", "nope"), PortRef::new("wf", "nope")]
        {
            let q = LineageQuery::focused(target, Index::empty(), []);
            assert!(matches!(ip.plan(&q), Err(CoreError::UnknownTarget { .. })));
        }
    }

    #[test]
    fn querying_a_workflow_input_returns_itself() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("wf", "v"),
            Index::single(1),
            [ProcessorName::from("wf")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].kind, StepKind::XferSrc);
        assert_eq!(plan.steps[0].index, Index::single(1));
    }

    #[test]
    fn profiled_plan_and_execute_record_phase_spans() {
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[3, 5]),
            [ProcessorName::from("Q"), ProcessorName::from("R")],
        );
        use prov_engine::TraceSink as _;
        let store = TraceStore::in_memory();
        let run = store.begin_run(&ProcessorName::from("wf"));
        let obs = prov_obs::Obs::enabled();
        let answer = ip.run_with(&store, run, &q, &obs).unwrap();
        let spans = obs.profiler.spans();
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("indexproj.plan"), 1);
        assert_eq!(count("indexproj.assemble"), 1);
        // One t2 span per plan step, even against an empty trace.
        assert_eq!(count("indexproj.step"), answer.trace_queries);
        // The plan span charges t1, the steps charge t2.
        assert!(spans.iter().any(|s| s.name == "indexproj.plan" && s.cat == "t1"));
        assert!(spans.iter().all(|s| s.name != "indexproj.step" || s.cat == "t2"));
    }

    #[test]
    fn index_deeper_than_iteration_falls_back_to_prefix() {
        // A 3-component index on P:Y (total iteration depth 2): the resid-
        // ual component cannot be inverted through the black box; the plan
        // uses the 2-component prefix.
        let df = fig3();
        let ip = IndexProj::new(&df);
        let q = LineageQuery::focused(
            PortRef::new("P", "Y"),
            Index::from_slice(&[1, 2, 7]),
            [ProcessorName::from("Q")],
        );
        let plan = ip.plan(&q).unwrap();
        assert_eq!(plan.steps[0].index, Index::single(1));
    }
}
