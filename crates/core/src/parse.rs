//! A concrete syntax for lineage queries — the paper's own notation.
//!
//! ```text
//! lin(⟨P:Y[1,2]⟩, {A, B})        fine-grained, focused
//! lin(<P:Y[]>, {})               ASCII brackets accepted
//! lin(<wf:out[0]>)               focus defaults to the empty set
//! impact(<wf:in[1]>, {wf})       forward queries use the same shape
//! ```
//!
//! The grammar, informally:
//!
//! ```text
//! query   := kind '(' binding (',' focus)? ')'
//! kind    := 'lin' | 'impact'
//! binding := ('⟨'|'<') IDENT ':' IDENT index ('⟩'|'>')
//! index   := '[' (NUM (',' NUM)*)? ']'
//! focus   := '{' (IDENT (',' IDENT)*)? '}'
//! ```
//!
//! Identifiers may contain any characters except the structural ones
//! (`:[]{}<>⟨⟩,()`), so qualified nested names like `sub/T1` and names
//! like `2TO1_FINAL` parse fine.

use prov_model::{Index, PortRef, ProcessorName};

use crate::{FocusSet, ImpactQuery, LineageQuery};

/// A parsed query of either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedQuery {
    /// A backward lineage query.
    Lineage(LineageQuery),
    /// A forward impact query.
    Impact(ImpactQuery),
}

/// A parse failure, with a human-oriented message and the byte offset at
/// which parsing stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the paper-notation query syntax.
pub fn parse_query(input: &str) -> Result<ParsedQuery, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let kind = p.ident("query kind")?;
    p.expect('(')?;
    let (target, index) = p.binding()?;
    p.skip_ws();
    let focus = if p.peek() == Some(',') {
        p.expect(',')?;
        p.focus_set()?
    } else {
        FocusSet::empty()
    };
    p.expect(')')?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input after query"));
    }
    match kind.as_str() {
        "lin" => Ok(ParsedQuery::Lineage(LineageQuery { target, index, focus })),
        "impact" => Ok(ParsedQuery::Impact(ImpactQuery { source: target, index, focus })),
        other => Err(ParseError {
            message: format!("unknown query kind {other:?} (expected lin or impact)"),
            at: 0,
        }),
    }
}

/// Convenience: parses and requires a lineage query.
pub fn parse_lineage(input: &str) -> Result<LineageQuery, ParseError> {
    match parse_query(input)? {
        ParsedQuery::Lineage(q) => Ok(q),
        ParsedQuery::Impact(_) => {
            Err(ParseError { message: "expected a lin(...) query, got impact(...)".into(), at: 0 })
        }
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

const STRUCTURAL: &[char] = &[':', '[', ']', '{', '}', '<', '>', '⟨', '⟩', ',', '(', ')'];

impl Parser<'_> {
    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), at: self.pos }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(got) if got == c => {
                self.bump();
                Ok(())
            }
            got => Err(self.error(format!("expected {c:?}, found {got:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_whitespace() || STRUCTURAL.contains(&c) {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.error(format!("expected {what}")));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn binding(&mut self) -> Result<(PortRef, Index), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('⟨') | Some('<') => {
                self.bump();
            }
            got => return Err(self.error(format!("expected ⟨ or <, found {got:?}"))),
        }
        let processor = self.ident("processor name")?;
        self.expect(':')?;
        let port = self.ident("port name")?;
        let index = self.index()?;
        self.skip_ws();
        match self.peek() {
            Some('⟩') | Some('>') => {
                self.bump();
            }
            got => return Err(self.error(format!("expected ⟩ or >, found {got:?}"))),
        }
        Ok((PortRef::new(processor.as_str(), &port), index))
    }

    fn index(&mut self) -> Result<Index, ParseError> {
        self.expect('[')?;
        let mut components = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(']') {
                self.bump();
                break;
            }
            if !components.is_empty() {
                self.expect(',')?;
                self.skip_ws();
            }
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            if self.pos == start {
                return Err(self.error("expected an index component (number)"));
            }
            let n: u32 = self.input[start..self.pos]
                .parse()
                .map_err(|e| self.error(format!("index component: {e}")))?;
            components.push(n);
        }
        Ok(Index::from(components))
    }

    fn focus_set(&mut self) -> Result<FocusSet, ParseError> {
        self.expect('{')?;
        let mut names: Vec<ProcessorName> = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.bump();
                break;
            }
            if !names.is_empty() {
                self.expect(',')?;
            }
            let name = self.ident("processor name")?;
            names.push(ProcessorName::from(name.as_str()));
        }
        Ok(FocusSet::from_names(names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_notation_exactly() {
        let q = parse_lineage("lin(⟨2TO1_FINAL:Y[1,2]⟩, {LISTGEN_1})").unwrap();
        assert_eq!(q.target, PortRef::new("2TO1_FINAL", "Y"));
        assert_eq!(q.index, Index::from_slice(&[1, 2]));
        assert!(q.focus.contains(&"LISTGEN_1".into()));
        // Round-trip: Display produces the same notation.
        assert_eq!(q.to_string(), "lin(⟨2TO1_FINAL:Y[1,2]⟩, {LISTGEN_1})");
        assert_eq!(parse_lineage(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn parses_ascii_brackets() {
        let q = parse_lineage("lin(<P:Y[0]>, {A, B})").unwrap();
        assert_eq!(q.target, PortRef::new("P", "Y"));
        assert_eq!(q.focus.len(), 2);
    }

    #[test]
    fn empty_index_and_focus() {
        let q = parse_lineage("lin(<P:Y[]>, {})").unwrap();
        assert!(q.index.is_empty());
        assert!(q.focus.is_empty());
        let q = parse_lineage("lin(<P:Y[]>)").unwrap();
        assert!(q.focus.is_empty());
    }

    #[test]
    fn parses_qualified_nested_names() {
        let q = parse_lineage("lin(<outer:ys[2]>, {sub/T1, sub})").unwrap();
        assert!(q.focus.contains(&"sub/T1".into()));
        assert!(q.focus.contains(&"sub".into()));
    }

    #[test]
    fn parses_impact_queries() {
        match parse_query("impact(<wf:in[1]>, {wf})").unwrap() {
            ParsedQuery::Impact(q) => {
                assert_eq!(q.source, PortRef::new("wf", "in"));
                assert_eq!(q.index, Index::single(1));
            }
            other => panic!("expected impact, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_whitespace() {
        let q = parse_lineage("  lin ( < P : Y [ 1 , 2 ] > , { A , B } )  ").unwrap();
        assert_eq!(q.index, Index::from_slice(&[1, 2]));
        assert_eq!(q.focus.len(), 2);
    }

    #[test]
    fn rejects_malformed_input_with_positions() {
        for bad in [
            "lin(P:Y[1])",        // missing binding brackets
            "lin(<P Y[1]>)",      // missing colon
            "lin(<P:Y[1)>",       // unclosed index
            "lin(<P:Y[x]>)",      // non-numeric component
            "lineage(<P:Y[]>)",   // unknown kind
            "lin(<P:Y[]>) extra", // trailing input
            "lin(<P:Y[]>, {A)",   // unclosed focus
        ] {
            let err = parse_query(bad);
            assert!(err.is_err(), "should reject {bad:?}");
        }
        let err = parse_query("lin(<P:Y[x]>)").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn requires_lineage_when_asked() {
        assert!(parse_lineage("impact(<a:b[]>)").is_err());
    }
}
