//! **NI** — the naïve baseline (§2.4): Def. 1 evaluated by recursive
//! traversal of the provenance graph.
//!
//! Every step retrieves events from the trace store:
//!
//! * *xform* case — invert a processor extensionally by finding the xform
//!   events whose output binding matches the current node; if the
//!   processor is interesting, collect its input bindings (`In_P`); recurse
//!   on every input binding;
//! * *xfer* case — follow arcs backwards (`lin(dst) = lin(src)`).
//!
//! The cost is proportional to the number of provenance-graph nodes on all
//! paths upstream of the query target — including regions that contain no
//! interesting processors at all, which is exactly the waste INDEXPROJ
//! avoids.

use std::collections::HashSet;
use std::sync::Arc;

use prov_model::{Binding, Index, ProcessorName, RunId};
use prov_obs::{JournalEvent, Obs, QueryCtx};
use prov_store::{ReadView, TraceStore};

use crate::{CoreError, LineageAnswer, LineageQuery, Result};

/// The naïve lineage query processor.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveLineage;

impl NaiveLineage {
    /// A query processor (stateless; the struct exists for API symmetry
    /// with [`crate::IndexProj`]).
    pub fn new() -> Self {
        NaiveLineage
    }

    /// Answers `query` over one run.
    pub fn run(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
    ) -> Result<LineageAnswer> {
        self.run_with(store, run, query, &Obs::disabled())
    }

    /// [`NaiveLineage::run`] with observability: one `ni.traverse` span
    /// covers the whole traversal, and every popped node records an
    /// `ni.hop` span charging the paper's `t2` account — the trace
    /// accesses that invert one provenance-graph node — tagged with its
    /// distance from the query target (`depth`). `t1` (pure traversal
    /// bookkeeping) is the traverse span minus the sum of its hops.
    pub fn run_with(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
        obs: &Obs,
    ) -> Result<LineageAnswer> {
        self.run_pinned(&store.pin(run), query, obs)
    }

    /// Answers `query` against an already-pinned read snapshot
    /// ([`prov_store::TraceStore::pin`]). The whole traversal probes the
    /// immutable view without acquiring any lock, and sees the run's trace
    /// exactly as of the pin even while recording continues.
    pub fn run_pinned(
        &self,
        view: &ReadView,
        query: &LineageQuery,
        obs: &Obs,
    ) -> Result<LineageAnswer> {
        self.run_pinned_inner(view, query, obs, None)
    }

    /// [`NaiveLineage::run_with`] under a [`QueryCtx`]: the traversal's
    /// trace accesses accumulate into query-local counters (journalled as
    /// one `QueryFinished` with exact totals — per-hop events would swamp
    /// the ring on deep graphs), and the deadline is enforced between
    /// hops.
    pub fn run_ctx(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &LineageQuery,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<LineageAnswer> {
        self.run_pinned_inner(&store.pin(run), query, obs, Some(ctx))
    }

    fn run_pinned_inner(
        &self,
        view: &ReadView,
        query: &LineageQuery,
        obs: &Obs,
        ctx: Option<&QueryCtx>,
    ) -> Result<LineageAnswer> {
        let started = std::time::Instant::now();
        let run = view.run();
        if let Some(c) = ctx {
            obs.journal
                .record(JournalEvent::QueryStarted { trace: c.trace, query: c.query.clone() });
        }
        // One guard spans the whole traversal: exactly one flush into the
        // shared counters, even if a hop errors out (or the deadline
        // fires) partway through.
        let mut probe = view.probe_guard();
        let mut t2_ns = 0u64;
        let mut traverse = obs.span("ni.traverse", "query");
        let mut visited: HashSet<(ProcessorName, Arc<str>, Index)> = HashSet::new();
        let mut stack: Vec<(ProcessorName, Arc<str>, Index, u64)> = vec![(
            query.target.processor.clone(),
            query.target.port.clone(),
            query.index.clone(),
            0,
        )];
        let mut bindings: Vec<Binding> = Vec::new();
        let mut trace_queries = 0usize;
        let mut max_depth = 0u64;

        while let Some((processor, port, index, depth)) = stack.pop() {
            if !visited.insert((processor.clone(), port.clone(), index.clone())) {
                continue;
            }
            if let Some(c) = ctx {
                if c.deadline_exceeded() {
                    return Err(CoreError::DeadlineExceeded { query: c.query.clone() });
                }
            }
            let hop_start = ctx.map(|_| std::time::Instant::now());
            max_depth = max_depth.max(depth);
            let mut hop = obs.span("ni.hop", "t2");
            hop.arg("depth", depth);

            // xform case: the node as an invocation output.
            trace_queries += 1;
            let producers = view.xforms_producing_stats(&processor, &port, &index, &mut probe);
            let focused = query.focus.contains(&processor);
            for rec in &producers {
                for input in rec.inputs() {
                    if focused {
                        bindings.push(view.resolve(&prov_store::StoredBinding {
                            run,
                            processor: processor.clone(),
                            port: input.port.clone(),
                            index: input.index.clone(),
                            value: input.value,
                        })?);
                    }
                    stack.push((
                        processor.clone(),
                        input.port.clone(),
                        input.index.clone(),
                        depth + 1,
                    ));
                }
            }

            // xfer case: the node as an arc destination.
            trace_queries += 1;
            let incoming = view.xfers_into_stats(&processor, &port, &index, &mut probe);
            for rec in &incoming {
                stack.push((
                    rec.src_processor.clone(),
                    rec.src_port.clone(),
                    rec.src_index.clone(),
                    depth + 1,
                ));
            }

            // Workflow-scope input ports exist in the trace only as xfer
            // *sources*: top-level inputs are true sources (no producers,
            // no incoming transfers), and a nested scope's inputs forward
            // into its own inner processors (names under `scope/`).
            // Collect their bindings when the scope is interesting.
            if focused && producers.is_empty() {
                let is_source = incoming.is_empty();
                let is_scope_input = if is_source {
                    false // already conclusive
                } else {
                    trace_queries += 1;
                    let scope_prefix = format!("{processor}/");
                    view.xfers_from_stats(&processor, &port, &index, &mut probe).iter().any(|r| {
                        r.dst_processor.as_str().starts_with(&scope_prefix)
                            || r.dst_processor == processor
                    })
                };
                if is_source || is_scope_input {
                    trace_queries += 1;
                    for b in view.xfer_src_bindings_stats(&processor, &port, &index, &mut probe) {
                        bindings.push(view.resolve(&b)?);
                    }
                }
            }
            hop.stop();
            if let Some(t) = hop_start {
                t2_ns += t.elapsed().as_nanos() as u64;
            }
        }

        traverse.arg("nodes", visited.len() as u64);
        traverse.arg("max_depth", max_depth);
        traverse.stop();
        if let Some(c) = ctx {
            let dur = started.elapsed();
            let dur_ns = dur.as_nanos() as u64;
            let totals = probe.so_far();
            let actual_rows = totals.records_read + totals.rows_scanned;
            let drift = match (c.predicted_lookups, c.predicted_rows) {
                (Some(lookups), Some(rows)) => {
                    let est = crate::CostEstimate {
                        per_step: vec![],
                        index_lookups: lookups,
                        rows_scanned: rows,
                        grounded: c.rows_grounded,
                    };
                    !est.check(totals.index_lookups, actual_rows, c.tolerance).ok
                }
                _ => false,
            };
            obs.journal.record(JournalEvent::QueryFinished {
                trace: c.trace,
                run: run.0,
                fingerprint: c.fingerprint,
                steps: trace_queries as u32,
                bindings: bindings.len() as u64,
                t1_ns: dur_ns.saturating_sub(t2_ns),
                t2_ns,
                dur_ns,
                index_lookups: totals.index_lookups,
                records_read: totals.records_read,
                rows_scanned: totals.rows_scanned,
                predicted_lookups: c.predicted_lookups,
                predicted_rows: c.predicted_rows,
                drift,
                slow: c.is_slow(dur),
            });
        }
        Ok(LineageAnswer::new(run, bindings, trace_queries, visited.len()))
    }

    /// Answers `query` over several runs. NI shares nothing between runs:
    /// each run costs one full provenance-graph traversal (the behaviour
    /// Fig. 4 contrasts with INDEXPROJ's shared phase s1). The traversals
    /// are independent, so enough runs are fanned out across threads;
    /// answers come back in run order.
    pub fn run_multi(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
    ) -> Result<Vec<LineageAnswer>> {
        self.run_multi_with(store, runs, query, &Obs::disabled())
    }

    /// [`NaiveLineage::run_multi`] with observability; the shared `Obs`
    /// collects every worker's spans on one timeline. Each worker pins its
    /// run's snapshot once and traverses it lock-free.
    pub fn run_multi_with(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
        obs: &Obs,
    ) -> Result<Vec<LineageAnswer>> {
        if runs.len() >= crate::par::RUN_FANOUT_MIN {
            crate::par::parallel_map(runs, |&r| self.run_pinned(&store.pin(r), query, obs))
                .into_iter()
                .collect()
        } else {
            runs.iter().map(|&r| self.run_with(store, r, query, obs)).collect()
        }
    }

    /// [`NaiveLineage::run_multi_with`] under a [`QueryCtx`]: every run's
    /// traversal journals its own `QueryStarted`/`QueryFinished` pair
    /// under the shared trace id, so per-query totals reassemble even
    /// when runs fan out across threads.
    pub fn run_multi_ctx(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &LineageQuery,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<Vec<LineageAnswer>> {
        if runs.len() >= crate::par::RUN_FANOUT_MIN {
            crate::par::parallel_map(runs, |&r| {
                self.run_pinned_inner(&store.pin(r), query, obs, Some(ctx))
            })
            .into_iter()
            .collect()
        } else {
            runs.iter()
                .map(|&r| self.run_pinned_inner(&store.pin(r), query, obs, Some(ctx)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_engine::{BehaviorRegistry, Engine, TraceSink};
    use prov_model::{PortRef, Value};

    /// in:list → A → B → out, identity stages.
    fn chain_setup() -> (TraceStore, RunId) {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        for name in ["A", "B"] {
            b.processor_with_behavior(name, "identity")
                .in_port("x", PortType::atom(BaseType::String))
                .out_port("y", PortType::atom(BaseType::String));
        }
        b.arc_from_input("in", "A", "x").unwrap();
        b.arc("A", "y", "B", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("B", "y", "out").unwrap();
        let df = b.build().unwrap();
        let store = TraceStore::in_memory();
        let run = Engine::new(BehaviorRegistry::new().with_builtins())
            .execute(&df, vec![("in".into(), Value::from(vec!["u", "v", "w"]))], &store)
            .unwrap()
            .run_id;
        (store, run)
    }

    #[test]
    fn fine_grained_lineage_reaches_the_right_input_element() {
        let (store, run) = chain_setup();
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(1),
            [ProcessorName::from("wf")],
        );
        let ans = NaiveLineage::new().run(&store, run, &q).unwrap();
        assert_eq!(ans.bindings.len(), 1);
        assert_eq!(ans.bindings[0].port, PortRef::new("wf", "in"));
        assert_eq!(ans.bindings[0].index, Index::single(1));
        assert_eq!(ans.bindings[0].value, Value::str("v"));
    }

    #[test]
    fn focusing_an_intermediate_processor_collects_its_inputs() {
        let (store, run) = chain_setup();
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(2),
            [ProcessorName::from("B")],
        );
        let ans = NaiveLineage::new().run(&store, run, &q).unwrap();
        assert_eq!(ans.bindings.len(), 1);
        assert_eq!(ans.bindings[0].port, PortRef::new("B", "x"));
        assert_eq!(ans.bindings[0].value, Value::str("w"));
    }

    #[test]
    fn coarse_query_collects_all_elements() {
        let (store, run) = chain_setup();
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::empty(),
            [ProcessorName::from("wf")],
        );
        let ans = NaiveLineage::new().run(&store, run, &q).unwrap();
        // All three input elements are in the lineage of the whole output.
        assert_eq!(ans.bindings.len(), 3);
    }

    #[test]
    fn empty_focus_returns_no_bindings_but_still_traverses() {
        let (store, run) = chain_setup();
        let q = LineageQuery::focused(PortRef::new("wf", "out"), Index::single(0), []);
        let ans = NaiveLineage::new().run(&store, run, &q).unwrap();
        assert!(ans.bindings.is_empty());
        assert!(ans.nodes_visited > 1);
        assert!(ans.trace_queries > 1);
    }

    #[test]
    fn multi_run_traverses_each_run_independently() {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("A", "identity")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("in", "A", "x").unwrap();
        b.output("out", PortType::list(BaseType::String));
        b.arc_to_output("A", "y", "out").unwrap();
        let df = b.build().unwrap();
        let store = TraceStore::in_memory();
        let engine = Engine::new(BehaviorRegistry::new().with_builtins());
        let mut runs = Vec::new();
        for tag in ["r0", "r1"] {
            runs.push(
                engine
                    .execute(&df, vec![("in".into(), Value::from(vec![tag]))], &store)
                    .unwrap()
                    .run_id,
            );
        }
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        let answers = NaiveLineage::new().run_multi(&store, &runs, &q).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].bindings[0].value, Value::str("r0"));
        assert_eq!(answers[1].bindings[0].value, Value::str("r1"));
    }

    #[test]
    fn profiled_run_records_traverse_and_hop_spans() {
        let (store, run) = chain_setup();
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(1),
            [ProcessorName::from("wf")],
        );
        let obs = prov_obs::Obs::enabled();
        let plain = NaiveLineage::new().run(&store, run, &q).unwrap();
        let profiled = NaiveLineage::new().run_with(&store, run, &q, &obs).unwrap();
        assert_eq!(plain.bindings, profiled.bindings);
        let spans = obs.profiler.spans();
        let traverses = spans.iter().filter(|s| s.name == "ni.traverse").count();
        let hops: Vec<_> = spans.iter().filter(|s| s.name == "ni.hop").collect();
        assert_eq!(traverses, 1);
        // One hop per visited provenance-graph node.
        assert_eq!(hops.len(), profiled.nodes_visited);
        // Depth args grow from the target (0) along the upstream path.
        let depths: Vec<u64> = hops
            .iter()
            .filter_map(|s| s.args.iter().find(|(k, _)| *k == "depth").map(|(_, v)| *v))
            .collect();
        assert_eq!(depths.len(), hops.len());
        assert!(depths.contains(&0));
        assert!(depths.iter().max().unwrap() >= &2, "chain is at least 3 nodes deep");
    }

    #[test]
    fn querying_a_run_with_no_trace_returns_empty() {
        let (store, _) = chain_setup();
        let ghost = store.begin_run(&"wf".into());
        let q = LineageQuery::focused(
            PortRef::new("wf", "out"),
            Index::single(0),
            [ProcessorName::from("wf")],
        );
        let ans = NaiveLineage::new().run(&store, ghost, &q).unwrap();
        assert!(ans.bindings.is_empty());
    }
}
