//! # prov-core
//!
//! Fine-grained, focused lineage querying — the paper's primary
//! contribution.
//!
//! Two interchangeable query processors answer the same [`LineageQuery`]:
//!
//! * [`NaiveLineage`] (**NI**, §2.4): the baseline of Def. 1 — a recursive
//!   traversal of the *provenance graph*, retrieving one trace event per
//!   step. Its cost grows with the length of the provenance path and, per
//!   step, with the trace's granularity.
//! * [`IndexProj`] (**INDEXPROJ**, §3.3, Alg. 2): the paper's algorithm —
//!   a traversal of the (much smaller) *workflow specification graph*,
//!   inverting every processor intensionally via the index projection rule
//!   (Def. 4, justified by Prop. 1), and touching the trace only for the
//!   processors the user actually cares about (`𝒫`).
//!
//! INDEXPROJ factors each query into the two phases the paper times
//! separately: building a [`LineagePlan`] (phase *s1*, pure graph work)
//! and executing its trace lookups (phase *s2*). Plans are reusable across
//! queries and — crucially for multi-run queries (§3.4) — across runs:
//! [`LineagePlan::execute`] takes the run id as a parameter, so a sweep
//! over `n` runs costs one *s1* plus `n × s2`. [`PlanCache`] memoises plans
//! per `(target, index, 𝒫)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod answer;
mod audit;
mod cost;
mod diff;
mod error;
mod impact;
mod indexproj;
mod naive;
mod par;
mod parse;
mod plan_cache;
mod query;
mod verify;

pub use answer::LineageAnswer;
pub use audit::{audit_run, AuditReport, AuditViolation};
pub use cost::{CostCheck, CostEstimate, CostModel, StepCost};
pub use diff::{diff_lineage, diff_traces, LineageDiff, TraceDiff};
pub use error::CoreError;
pub use impact::{ImpactQuery, NaiveImpact};
pub use indexproj::{IndexProj, LineagePlan, PlanStep, StepKind};
pub use naive::NaiveLineage;
pub use par::{query_workers, set_query_threads, MAX_QUERY_THREADS};
pub use parse::{parse_lineage, parse_query, ParseError, ParsedQuery};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use query::{FocusSet, LineageQuery};
pub use verify::{step_index_id, verify_plan, Explanation, PlanReport, StepClass, VerifiedStep};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
