//! Forward (impact) queries — an extension beyond the paper.
//!
//! Lineage asks *"where did this come from?"*; impact asks the dual:
//! *"which downstream data were derived from this element?"*. This is the
//! other standard provenance-challenge question shape (e.g. "which results
//! are tainted by this bad input file?").
//!
//! The implementation mirrors the **NI** baseline, traversing the
//! provenance graph *forwards*: xform events are matched on their input
//! bindings, xfer events followed source→destination. An intensional
//! (INDEXPROJ-style) forward algorithm would need index *patterns*
//! (fragments constrained at statically known offsets, wildcards
//! elsewhere); the backward algorithm suffices for the paper's claims, so
//! the forward direction is provided extensionally only.

use std::collections::HashSet;
use std::sync::Arc;

use prov_model::{Binding, Index, PortRef, ProcessorName, RunId};
use prov_obs::{JournalEvent, Obs, QueryCtx};
use prov_store::{ReadView, TraceStore};

use crate::{CoreError, FocusSet, LineageAnswer, Result};

/// A forward query: starting from element `index` of the value on
/// `source`, collect the bindings at the interesting processors along
/// every *downstream* path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImpactQuery {
    /// The port whose value's downstream impact is asked for (typically a
    /// workflow input).
    pub source: PortRef,
    /// Position within the source value; empty = the whole value.
    pub index: Index,
    /// The interesting processors (bindings are collected on their
    /// *output* side; the workflow name collects workflow outputs).
    pub focus: FocusSet,
}

impl ImpactQuery {
    /// Builds a focused impact query.
    pub fn focused(
        source: PortRef,
        index: Index,
        focus: impl IntoIterator<Item = ProcessorName>,
    ) -> Self {
        ImpactQuery { source, index, focus: FocusSet::from_names(focus) }
    }
}

impl std::fmt::Display for ImpactQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "impact(⟨{}{}⟩, {})", self.source, self.index, self.focus)
    }
}

/// The forward-traversal query processor.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveImpact;

impl NaiveImpact {
    /// A query processor.
    pub fn new() -> Self {
        NaiveImpact
    }

    /// Answers `query` over one run.
    pub fn run(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &ImpactQuery,
    ) -> Result<LineageAnswer> {
        self.run_pinned(&store.pin(run), query)
    }

    /// Answers `query` against an already-pinned read snapshot; the whole
    /// forward traversal is lock-free after the pin.
    pub fn run_pinned(&self, view: &ReadView, query: &ImpactQuery) -> Result<LineageAnswer> {
        self.run_pinned_inner(view, query, &Obs::disabled(), None)
    }

    /// [`NaiveImpact::run`] under a [`QueryCtx`]: journals
    /// `QueryStarted`/`QueryFinished` with the traversal's exact probe
    /// totals and enforces the deadline between hops.
    pub fn run_ctx(
        &self,
        store: &TraceStore,
        run: RunId,
        query: &ImpactQuery,
        obs: &Obs,
        ctx: &QueryCtx,
    ) -> Result<LineageAnswer> {
        self.run_pinned_inner(&store.pin(run), query, obs, Some(ctx))
    }

    fn run_pinned_inner(
        &self,
        view: &ReadView,
        query: &ImpactQuery,
        obs: &Obs,
        ctx: Option<&QueryCtx>,
    ) -> Result<LineageAnswer> {
        let started = std::time::Instant::now();
        let run = view.run();
        if let Some(c) = ctx {
            obs.journal
                .record(JournalEvent::QueryStarted { trace: c.trace, query: c.query.clone() });
        }
        let mut probe = view.probe_guard();
        let mut visited: HashSet<(ProcessorName, Arc<str>, Index)> = HashSet::new();
        let mut stack =
            vec![(query.source.processor.clone(), query.source.port.clone(), query.index.clone())];
        let mut bindings: Vec<Binding> = Vec::new();
        let mut trace_queries = 0usize;

        while let Some(node) = stack.pop() {
            if !visited.insert(node.clone()) {
                continue;
            }
            if let Some(c) = ctx {
                if c.deadline_exceeded() {
                    return Err(CoreError::DeadlineExceeded { query: c.query.clone() });
                }
            }
            let (processor, port, index) = node;
            let focused = query.focus.contains(&processor);

            // Forward xform case: invocations that consumed this binding;
            // their outputs are impacted.
            trace_queries += 1;
            let consumers = view.xforms_consuming_stats(&processor, &port, &index, &mut probe);
            for rec in &consumers {
                // Only invocations whose THIS-port input actually overlaps.
                for output in rec.outputs() {
                    stack.push((processor.clone(), output.port.clone(), output.index.clone()));
                }
            }

            // Forward xfer case: transfers leaving this binding.
            trace_queries += 1;
            let outgoing = view.xfers_from_stats(&processor, &port, &index, &mut probe);
            for rec in &outgoing {
                if query.focus.contains(&rec.dst_processor) {
                    // Collect the impacted element at the destination when
                    // the destination is interesting and is a sink-style
                    // port (workflow outputs never feed an xform).
                    bindings.push(view.resolve(&prov_store::StoredBinding {
                        run,
                        processor: rec.dst_processor.clone(),
                        port: rec.dst_port.clone(),
                        index: rec.dst_index.clone(),
                        value: rec.value,
                    })?);
                }
                stack.push((
                    rec.dst_processor.clone(),
                    rec.dst_port.clone(),
                    rec.dst_index.clone(),
                ));
            }

            // Focused intermediate outputs: collect the produced elements.
            if focused {
                for rec in &consumers {
                    for output in rec.outputs() {
                        bindings.push(view.resolve(&prov_store::StoredBinding {
                            run,
                            processor: processor.clone(),
                            port: output.port.clone(),
                            index: output.index.clone(),
                            value: output.value,
                        })?);
                    }
                }
            }
        }

        if let Some(c) = ctx {
            let dur = started.elapsed();
            let totals = probe.so_far();
            obs.journal.record(JournalEvent::QueryFinished {
                trace: c.trace,
                run: run.0,
                fingerprint: c.fingerprint,
                steps: trace_queries as u32,
                bindings: bindings.len() as u64,
                // The forward traversal interleaves graph bookkeeping and
                // trace access; all time is charged to t2 (trace work
                // dominates, as in the NI baseline).
                t1_ns: 0,
                t2_ns: dur.as_nanos() as u64,
                dur_ns: dur.as_nanos() as u64,
                index_lookups: totals.index_lookups,
                records_read: totals.records_read,
                rows_scanned: totals.rows_scanned,
                predicted_lookups: c.predicted_lookups,
                predicted_rows: c.predicted_rows,
                drift: false,
                slow: c.is_slow(dur),
            });
        }
        Ok(LineageAnswer::new(run, bindings, trace_queries, visited.len()))
    }

    /// Answers `query` over several runs.
    pub fn run_multi(
        &self,
        store: &TraceStore,
        runs: &[RunId],
        query: &ImpactQuery,
    ) -> Result<Vec<LineageAnswer>> {
        runs.iter().map(|&r| self.run(store, r, query)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    use prov_engine::{BehaviorRegistry, Engine};
    use prov_model::Value;

    /// in:list → A(atom→atom) → out, plus a second output via count.
    fn setup() -> (prov_dataflow::Dataflow, TraceStore, RunId) {
        let mut b = DataflowBuilder::new("wf");
        b.input("in", PortType::list(BaseType::String));
        b.processor_with_behavior("A", "string_upper")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.processor_with_behavior("N", "list_length")
            .in_port("xs", PortType::list(BaseType::String))
            .out_port("n", PortType::atom(BaseType::Int));
        b.arc_from_input("in", "A", "x").unwrap();
        b.arc("A", "y", "N", "xs").unwrap();
        b.output("upper", PortType::list(BaseType::String));
        b.output("count", PortType::atom(BaseType::Int));
        b.arc_to_output("A", "y", "upper").unwrap();
        b.arc_to_output("N", "n", "count").unwrap();
        let df = b.build().unwrap();
        let store = TraceStore::in_memory();
        let run = Engine::new(BehaviorRegistry::new().with_builtins())
            .execute(&df, vec![("in".into(), Value::from(vec!["a", "b", "c"]))], &store)
            .unwrap()
            .run_id;
        (df, store, run)
    }

    #[test]
    fn impact_of_one_element_reaches_its_derivatives_and_aggregates() {
        let (_, store, run) = setup();
        // impact(in[1]) focused on the workflow: the derived upper[1] and
        // the aggregate count (derived from all elements) are impacted.
        let q = ImpactQuery::focused(
            PortRef::new("wf", "in"),
            Index::single(1),
            [ProcessorName::from("wf")],
        );
        let ans = NaiveImpact::new().run(&store, run, &q).unwrap();
        let upper = ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "upper")).unwrap();
        assert_eq!(upper.index, Index::single(1));
        assert_eq!(upper.value, Value::str("B"));
        assert!(ans.bindings.iter().any(|b| b.port == PortRef::new("wf", "count")));
    }

    #[test]
    fn impact_respects_element_granularity_through_one_to_one_stages() {
        let (_, store, run) = setup();
        let q = ImpactQuery::focused(
            PortRef::new("wf", "in"),
            Index::single(0),
            [ProcessorName::from("A")],
        );
        let ans = NaiveImpact::new().run(&store, run, &q).unwrap();
        // Only A's invocation 0 output is collected for A.
        let a_outputs: Vec<&Binding> =
            ans.bindings.iter().filter(|b| b.port == PortRef::new("A", "y")).collect();
        assert_eq!(a_outputs.len(), 1);
        assert_eq!(a_outputs[0].value, Value::str("A"));
        assert_eq!(a_outputs[0].index, Index::single(0));
    }

    #[test]
    fn impact_and_lineage_are_mutually_consistent() {
        // If x ∈ lin(y) then y ∈ impact(x), at workflow granularity.
        let (df, store, run) = setup();
        let lineage_q = crate::LineageQuery::focused(
            PortRef::new("wf", "upper"),
            Index::single(2),
            [ProcessorName::from("wf")],
        );
        let lin = crate::IndexProj::new(&df).run(&store, run, &lineage_q).unwrap();
        assert_eq!(lin.bindings.len(), 1);
        let src = &lin.bindings[0];
        assert_eq!(src.port, PortRef::new("wf", "in"));

        let impact_q =
            ImpactQuery::focused(src.port.clone(), src.index.clone(), [ProcessorName::from("wf")]);
        let imp = NaiveImpact::new().run(&store, run, &impact_q).unwrap();
        assert!(
            imp.bindings
                .iter()
                .any(|b| b.port == PortRef::new("wf", "upper") && b.index == Index::single(2)),
            "{imp}"
        );
    }

    #[test]
    fn whole_value_impact_covers_everything_downstream() {
        let (_, store, run) = setup();
        let q = ImpactQuery::focused(
            PortRef::new("wf", "in"),
            Index::empty(),
            [ProcessorName::from("wf")],
        );
        let ans = NaiveImpact::new().run(&store, run, &q).unwrap();
        // Three upper elements + one count.
        assert_eq!(ans.bindings.len(), 4);
    }
}
