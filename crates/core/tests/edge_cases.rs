//! Edge cases of the query algorithms: fan-out/fan-in graph shapes,
//! default-valued ports, intermediate-port targets, and degenerate runs.

use prov_core::{IndexProj, LineageQuery, NaiveLineage, StepKind};
use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{builtin, BehaviorRegistry, Engine};
use prov_model::{Index, PortRef, ProcessorName, RunId, Value};
use prov_store::TraceStore;

fn registry() -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new().with_builtins();
    r.register("t1", builtin::tagger("-1"));
    r.register("t2", builtin::tagger("-2"));
    r.register_fn("pair", |inputs| {
        let a = builtin::expect_str(&inputs[0])?;
        let b = builtin::expect_str(&inputs[1])?;
        Ok(vec![Value::str(&format!("{a}+{b}"))])
    });
    r
}

/// in → S → (L, R) → J: a diamond where both branches share one source.
fn diamond() -> Dataflow {
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::list(BaseType::String));
    b.processor_with_behavior("S", "identity")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("L", "t1")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("R", "t2")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("J", "pair")
        .in_port("a", PortType::atom(BaseType::String))
        .in_port("b", PortType::atom(BaseType::String))
        .out_port("z", PortType::atom(BaseType::String));
    b.arc_from_input("in", "S", "x").unwrap();
    b.arc("S", "y", "L", "x").unwrap();
    b.arc("S", "y", "R", "x").unwrap();
    b.arc("L", "y", "J", "a").unwrap();
    b.arc("R", "y", "J", "b").unwrap();
    b.output("out", PortType::nested(BaseType::String, 2));
    b.arc_to_output("J", "z", "out").unwrap();
    b.build().unwrap()
}

fn execute(df: &Dataflow, inputs: Vec<(String, Value)>) -> (TraceStore, RunId) {
    let store = TraceStore::in_memory();
    let run = Engine::new(registry()).execute(df, inputs, &store).unwrap().run_id;
    (store, run)
}

#[test]
fn diamond_lineage_dedups_the_shared_source() {
    let df = diamond();
    let (store, run) = execute(&df, vec![("in".into(), Value::from(vec!["u", "v"]))]);
    // Focus on S: the traversal reaches S twice (via L and via R) but the
    // plan must contain each Q lookup once.
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::from_slice(&[1, 1]),
        [ProcessorName::from("S")],
    );
    let plan = IndexProj::new(&df).plan(&q).unwrap();
    assert_eq!(plan.steps.len(), 1);
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = plan.execute(&store, run).unwrap();
    assert!(ni.same_bindings(&ip));
    assert_eq!(ip.bindings.len(), 1);
    assert_eq!(ip.bindings[0].value, Value::str("v"));
}

#[test]
fn diamond_join_mixes_indices_from_both_branches() {
    let df = diamond();
    let (store, run) = execute(&df, vec![("in".into(), Value::from(vec!["u", "v", "w"]))]);
    // out[i][j] = L(in[i]) + R(in[j]); focus on the workflow input.
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::from_slice(&[0, 2]),
        [ProcessorName::from("wf")],
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    let mut values: Vec<&Value> = ni.bindings.iter().map(|b| &b.value).collect();
    values.sort_by_key(|v| v.to_string());
    assert_eq!(values, vec![&Value::str("u"), &Value::str("w")]);
}

#[test]
fn default_valued_port_appears_in_lineage_of_its_processor() {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", PortType::list(BaseType::String));
    b.processor_with_behavior("J", "pair")
        .in_port("x", PortType::atom(BaseType::String))
        .in_port_with_default("y", PortType::atom(BaseType::String), Value::str("cfg"))
        .out_port("z", PortType::atom(BaseType::String));
    b.arc_from_input("a", "J", "x").unwrap();
    b.output("out", PortType::list(BaseType::String));
    b.arc_to_output("J", "z", "out").unwrap();
    let df = b.build().unwrap();
    let (store, run) = execute(&df, vec![("a".into(), Value::from(vec!["p", "q"]))]);

    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::single(0),
        [ProcessorName::from("J")],
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    // Both the consumed element and the design-time default are bindings.
    assert!(ni.bindings.iter().any(|b| b.value == Value::str("p")));
    assert!(ni.bindings.iter().any(|b| b.value == Value::str("cfg")));
}

#[test]
fn intermediate_processor_output_is_a_valid_target() {
    let df = diamond();
    let (store, run) = execute(&df, vec![("in".into(), Value::from(vec!["u", "v"]))]);
    // Target L:y (not a workflow output).
    let q = LineageQuery::focused(
        PortRef::new("L", "y"),
        Index::single(1),
        [ProcessorName::from("wf")],
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    assert_eq!(ni.bindings.len(), 1);
    assert_eq!(ni.bindings[0].port, PortRef::new("wf", "in"));
    assert_eq!(ni.bindings[0].index, Index::single(1));
}

#[test]
fn out_of_range_index_yields_empty_answers_from_both() {
    let df = diamond();
    let (store, run) = execute(&df, vec![("in".into(), Value::from(vec!["u"]))]);
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::from_slice(&[7, 7]), // nothing was produced there
        [ProcessorName::from("wf")],
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    assert!(ni.bindings.is_empty());
}

#[test]
fn plan_steps_expose_their_kinds() {
    let df = diamond();
    let q = LineageQuery::unfocused(PortRef::new("wf", "out"), Index::empty(), &df);
    let plan = IndexProj::new(&df).plan(&q).unwrap();
    assert!(plan.steps.iter().any(|s| s.kind == StepKind::XformInput));
    assert!(plan.steps.iter().any(|s| s.kind == StepKind::XferSrc));
    // Serialisable for tooling.
    let json = serde_json::to_string(&plan).unwrap();
    assert!(json.contains("XferSrc"));
}
