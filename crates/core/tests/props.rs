//! Randomised NI ≡ INDEXPROJ equivalence over generated workflow shapes.
//!
//! The generator builds layered DAGs mixing one-to-one, one-to-many,
//! many-to-one and two-input join processors, executes them on random flat
//! list inputs, and compares the two algorithms on random focused queries
//! at random indices.

use proptest::prelude::*;

use prov_core::{IndexProj, LineageQuery, NaiveLineage};
use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{builtin, BehaviorRegistry, Engine};
use prov_model::{Index, PortRef, ProcessorName, Value};
use prov_store::TraceStore;

#[derive(Debug, Clone, Copy)]
enum StageKind {
    /// atom → atom (preserves granularity).
    OneToOne,
    /// atom → list (adds a declared level).
    OneToMany,
    /// list → atom (destroys granularity: consumes the whole list).
    ManyToOne,
}

fn registry() -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new().with_builtins();
    r.register("t", builtin::tagger("+"));
    r.register_fn("fanout", |inputs| {
        let s = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::from(vec![format!("{s}l"), format!("{s}r")])])
    });
    r.register_fn("join_str", |inputs| {
        let mut out = String::new();
        for v in inputs {
            if let Some(items) = v.as_list() {
                for i in items {
                    out.push_str(i.as_atom().and_then(|a| a.as_str()).unwrap_or("?"));
                }
            } else {
                out.push_str(v.as_atom().and_then(|a| a.as_str()).unwrap_or("?"));
            }
        }
        Ok(vec![Value::from(out)])
    });
    r
}

/// Builds a linear workflow of the given stage kinds over a flat list
/// input, tracking the declared port types so the pipeline stays well
/// typed regardless of the kind sequence.
fn build_chain(kinds: &[StageKind]) -> Dataflow {
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::list(BaseType::String));
    // The declared depth of the value flowing between stages (the actual
    // depth can be higher due to iteration; declared types matter here).
    let mut prev: Option<(String, String)> = None; // (proc, out port)
    let mut prev_declared = 0usize; // declared depth of upstream OUT port
    for (i, kind) in kinds.iter().enumerate() {
        let name = format!("P{i}");
        let (in_depth, out_depth, behavior) = match kind {
            StageKind::OneToOne => (0, 0, "t"),
            StageKind::OneToMany => (0, 1, "fanout"),
            StageKind::ManyToOne => (1, 0, "join_str"),
        };
        // A ManyToOne after a depth-0 producer would wrap (δ = −1), which
        // is fine too — everything stays executable.
        let _ = prev_declared;
        b.processor_with_behavior(&name, behavior)
            .in_port("x", PortType::nested(BaseType::String, in_depth))
            .out_port("y", PortType::nested(BaseType::String, out_depth));
        match &prev {
            None => {
                b.arc_from_input("in", &name, "x").unwrap();
            }
            Some((p, port)) => {
                b.arc(p, port, &name, "x").unwrap();
            }
        }
        prev = Some((name, "y".into()));
        prev_declared = out_depth;
    }
    let (last, port) = prev.unwrap();
    // Output declared type: generous nesting, engine tolerates any actual.
    b.output("out", PortType::nested(BaseType::String, 4));
    b.arc_to_output(&last, &port, "out").unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ni_equals_indexproj_on_random_chains(
        kinds in proptest::collection::vec(
            prop_oneof![
                Just(StageKind::OneToOne),
                Just(StageKind::OneToMany),
                Just(StageKind::ManyToOne),
            ],
            1..6,
        ),
        n_items in 1usize..4,
        focus_bits in proptest::collection::vec(any::<bool>(), 7),
        idx in proptest::collection::vec(0u32..2, 0..3),
    ) {
        let df = build_chain(&kinds);
        let store = TraceStore::in_memory();
        let items: Vec<Value> = (0..n_items).map(|i| Value::str(&format!("i{i}"))).collect();
        let run = Engine::new(registry())
            .execute(&df, vec![("in".into(), Value::List(items))], &store)
            .unwrap()
            .run_id;

        // Random focus: workflow + a random subset of processors.
        let mut focus: Vec<ProcessorName> = Vec::new();
        if focus_bits[0] {
            focus.push("wf".into());
        }
        for (i, _) in kinds.iter().enumerate() {
            if focus_bits[(i + 1) % focus_bits.len()] {
                focus.push(format!("P{i}").into());
            }
        }

        let q = LineageQuery::focused(PortRef::new("wf", "out"), Index::from(idx), focus);
        let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
        prop_assert!(
            ni.same_bindings(&ip),
            "divergence on {} over {:?}:\nNI: {}\nIP: {}",
            q, kinds, ni, ip
        );
    }

    /// INDEXPROJ never issues more trace queries than its plan has steps,
    /// and the plan is index-value independent (constant in d).
    #[test]
    fn plan_shape_is_value_independent(
        kinds in proptest::collection::vec(
            prop_oneof![Just(StageKind::OneToOne), Just(StageKind::OneToMany)],
            1..5,
        ),
        i1 in 0u32..3,
        i2 in 3u32..50,
    ) {
        let df = build_chain(&kinds);
        let ip = IndexProj::new(&df);
        let focus = [ProcessorName::from("wf"), ProcessorName::from("P0")];
        let q1 = LineageQuery::focused(PortRef::new("wf", "out"), Index::single(i1), focus.clone());
        let q2 = LineageQuery::focused(PortRef::new("wf", "out"), Index::single(i2), focus);
        let p1 = ip.plan(&q1).unwrap();
        let p2 = ip.plan(&q2).unwrap();
        prop_assert_eq!(p1.steps.len(), p2.steps.len());
        prop_assert_eq!(p1.nodes_visited, p2.nodes_visited);
    }
}
