//! End-to-end equivalence of the two query processors: for workflows
//! executed by the real engine into the real store, NI and INDEXPROJ must
//! return exactly the same binding sets, at every granularity and focus.
//! This is the correctness statement behind the paper's claim that the
//! intensional inversion (Prop. 1 / Def. 4) is *accurate*, unlike the
//! approximate weak inverses of Woodruff & Stonebraker.

use std::sync::Arc;

use prov_core::{IndexProj, LineageQuery, NaiveLineage};
use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{builtin, BehaviorRegistry, Engine};
use prov_model::{Index, PortRef, ProcessorName, RunId, Value};
use prov_store::TraceStore;

fn registry() -> BehaviorRegistry {
    let mut r = BehaviorRegistry::new().with_builtins();
    r.register("tag_a", builtin::tagger("-a"));
    r.register("tag_b", builtin::tagger("-b"));
    r.register_fn("pair", |inputs| {
        let a = builtin::expect_str(&inputs[0])?;
        let b = builtin::expect_str(&inputs[1])?;
        Ok(vec![Value::str(&format!("{a}+{b}"))])
    });
    r.register_fn("pathways", |inputs| {
        // gene → list of pathway ids (a one-to-many stage, like the GK
        // workflow's KEGG lookup).
        let g = builtin::expect_str(&inputs[0])?;
        Ok(vec![Value::from(vec![format!("{g}/p1"), format!("{g}/p2")])])
    });
    r
}

fn execute(df: &Dataflow, inputs: Vec<(String, Value)>) -> (TraceStore, RunId) {
    let store = TraceStore::in_memory();
    let run = Engine::new(registry()).execute(df, inputs, &store).unwrap().run_id;
    (store, run)
}

/// Asserts NI and INDEXPROJ agree for the query, and returns the answer.
fn check(
    df: &Dataflow,
    store: &TraceStore,
    run: RunId,
    q: &LineageQuery,
) -> prov_core::LineageAnswer {
    let ni = NaiveLineage::new().run(store, run, q).unwrap();
    let ip = IndexProj::new(df).run(store, run, q).unwrap();
    assert!(ni.same_bindings(&ip), "divergence on {q}:\nNI: {ni}\nIP: {ip}");
    ni
}

#[test]
fn fig3_worked_example_matches_the_paper() {
    // lin(⟨P:Y[h,l]⟩, {Q,R}) = {⟨Q:X[h], v⟩, ⟨R:X[], w⟩} (§2.4).
    let mut b = DataflowBuilder::new("wf");
    b.input("v", PortType::list(BaseType::String));
    b.input("w", PortType::atom(BaseType::String));
    b.input("c", PortType::list(BaseType::String));
    b.processor_with_behavior("Q", "tag_a")
        .in_port("X", PortType::atom(BaseType::String))
        .out_port("Y", PortType::atom(BaseType::String));
    b.processor_with_behavior("R", "pathways")
        .in_port("X", PortType::atom(BaseType::String))
        .out_port("Y", PortType::list(BaseType::String));
    b.processor_with_behavior("P", "pair")
        .in_port("X1", PortType::atom(BaseType::String))
        .in_port("X3", PortType::atom(BaseType::String))
        .out_port("Y", PortType::atom(BaseType::String));
    b.arc_from_input("v", "Q", "X").unwrap();
    b.arc_from_input("w", "R", "X").unwrap();
    b.arc("Q", "Y", "P", "X1").unwrap();
    b.arc("R", "Y", "P", "X3").unwrap();
    b.output("y", PortType::nested(BaseType::String, 2));
    b.arc_to_output("P", "Y", "y").unwrap();
    let df = b.build().unwrap();

    let (store, run) = execute(
        &df,
        vec![
            ("v".into(), Value::from(vec!["g1", "g2", "g3"])),
            ("w".into(), Value::str("seed")),
            ("c".into(), Value::from(vec!["c1"])),
        ],
    );

    // h = 2, l = 1.
    let q = LineageQuery::focused(
        PortRef::new("P", "Y"),
        Index::from_slice(&[2, 1]),
        [ProcessorName::from("Q"), ProcessorName::from("R")],
    );
    let ans = check(&df, &store, run, &q);
    // ⟨Q:X[2], "g3"⟩ and ⟨R:X[], "seed"⟩.
    assert_eq!(ans.bindings.len(), 2);
    let qx = ans.bindings.iter().find(|b| b.port == PortRef::new("Q", "X")).unwrap();
    assert_eq!(qx.index, Index::single(2));
    assert_eq!(qx.value, Value::str("g3"));
    let rx = ans.bindings.iter().find(|b| b.port == PortRef::new("R", "X")).unwrap();
    assert!(rx.index.is_empty());
    assert_eq!(rx.value, Value::str("seed"));
}

#[test]
fn chain_equivalence_at_all_indices_and_focuses() {
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::list(BaseType::String));
    let stages = ["S0", "S1", "S2", "S3"];
    for (i, name) in stages.iter().enumerate() {
        b.processor_with_behavior(name, if i % 2 == 0 { "tag_a" } else { "tag_b" })
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
    }
    b.arc_from_input("in", "S0", "x").unwrap();
    for w in stages.windows(2) {
        b.arc(w[0], "y", w[1], "x").unwrap();
    }
    b.output("out", PortType::list(BaseType::String));
    b.arc_to_output("S3", "y", "out").unwrap();
    let df = b.build().unwrap();

    let items: Vec<Value> = (0..5).map(|i| Value::str(&format!("e{i}"))).collect();
    let (store, run) = execute(&df, vec![("in".into(), Value::List(items))]);

    for i in 0..5u32 {
        for focus in [
            vec![ProcessorName::from("wf")],
            vec![ProcessorName::from("S2")],
            vec![ProcessorName::from("wf"), ProcessorName::from("S1"), ProcessorName::from("S3")],
            vec![],
        ] {
            let q = LineageQuery::focused(PortRef::new("wf", "out"), Index::single(i), focus);
            let ans = check(&df, &store, run, &q);
            if q.focus.contains(&"wf".into()) {
                let wf_binding =
                    ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "in")).unwrap();
                assert_eq!(wf_binding.value, Value::str(&format!("e{i}")));
            }
        }
    }
    // Coarse query too.
    let q = LineageQuery::unfocused(PortRef::new("wf", "out"), Index::empty(), &df);
    check(&df, &store, run, &q);
}

#[test]
fn cross_product_equivalence() {
    // The synthetic-testbed shape: two chains joined by a cross product.
    let mut b = DataflowBuilder::new("wf");
    b.input("a", PortType::list(BaseType::String));
    b.input("b", PortType::list(BaseType::String));
    b.processor_with_behavior("LA", "tag_a")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("LB", "tag_b")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("J", "pair")
        .in_port("x", PortType::atom(BaseType::String))
        .in_port("y", PortType::atom(BaseType::String))
        .out_port("z", PortType::atom(BaseType::String));
    b.arc_from_input("a", "LA", "x").unwrap();
    b.arc_from_input("b", "LB", "x").unwrap();
    b.arc("LA", "y", "J", "x").unwrap();
    b.arc("LB", "y", "J", "y").unwrap();
    b.output("out", PortType::nested(BaseType::String, 2));
    b.arc_to_output("J", "z", "out").unwrap();
    let df = b.build().unwrap();

    let (store, run) = execute(
        &df,
        vec![
            ("a".into(), Value::from(vec!["a0", "a1", "a2"])),
            ("b".into(), Value::from(vec!["b0", "b1"])),
        ],
    );

    for i in 0..3u32 {
        for j in 0..2u32 {
            let q = LineageQuery::focused(
                PortRef::new("wf", "out"),
                Index::from_slice(&[i, j]),
                [ProcessorName::from("wf")],
            );
            let ans = check(&df, &store, run, &q);
            // Exactly one element from each input list.
            assert_eq!(ans.bindings.len(), 2, "{q}: {ans}");
            let a = ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "a")).unwrap();
            assert_eq!(a.value, Value::str(&format!("a{i}")));
            let bb = ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "b")).unwrap();
            assert_eq!(bb.value, Value::str(&format!("b{j}")));
        }
    }
    // Focus on the join processor itself.
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::from_slice(&[1, 0]),
        [ProcessorName::from("J")],
    );
    let ans = check(&df, &store, run, &q);
    assert_eq!(ans.bindings.len(), 2);
    assert!(ans.bindings.iter().any(|b| b.value == Value::str("a1-a")));
    assert!(ans.bindings.iter().any(|b| b.value == Value::str("b0-b")));
}

#[test]
fn one_to_many_and_flatten_equivalence() {
    // genes → pathways (one-to-many) → flatten → dedup: the right branch
    // of the GK workflow, where granularity is partially destroyed.
    let mut b = DataflowBuilder::new("wf");
    b.input("genes", PortType::list(BaseType::String));
    b.processor_with_behavior("GP", "pathways")
        .in_port("g", PortType::atom(BaseType::String))
        .out_port("ps", PortType::list(BaseType::String));
    b.processor_with_behavior("FL", "flatten")
        .in_port("xss", PortType::nested(BaseType::String, 2))
        .out_port("xs", PortType::list(BaseType::String));
    b.processor_with_behavior("DD", "dedup")
        .in_port("xs", PortType::list(BaseType::String))
        .out_port("ys", PortType::list(BaseType::String));
    b.arc_from_input("genes", "GP", "g").unwrap();
    b.arc("GP", "ps", "FL", "xss").unwrap();
    b.arc("FL", "xs", "DD", "xs").unwrap();
    b.output("out", PortType::list(BaseType::String));
    b.arc_to_output("DD", "ys", "out").unwrap();
    let df = b.build().unwrap();

    let (store, run) = execute(&df, vec![("genes".into(), Value::from(vec!["g1", "g2"]))]);

    // FL consumed the whole nested list (δ = 0): lineage through it is
    // coarse, so any output element depends on all genes — both
    // algorithms must agree on that coarsening.
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::single(0),
        [ProcessorName::from("wf")],
    );
    let ans = check(&df, &store, run, &q);
    assert_eq!(ans.bindings.len(), 2); // both genes
                                       // And focusing the one-to-many stage still works.
    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::single(1),
        [ProcessorName::from("GP")],
    );
    let ans = check(&df, &store, run, &q);
    assert_eq!(ans.bindings.len(), 2); // GP ran twice; coarse from FL up
}

#[test]
fn nested_dataflow_equivalence_without_outer_iteration() {
    // inner: x → tag_a → tag_b → y, as a nested processor on lists.
    let mut inner = DataflowBuilder::new("inner");
    inner.input("a", PortType::list(BaseType::String));
    inner
        .processor_with_behavior("T1", "tag_a")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner
        .processor_with_behavior("T2", "tag_b")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner.arc_from_input("a", "T1", "x").unwrap();
    inner.arc("T1", "y", "T2", "x").unwrap();
    inner.output("b", PortType::list(BaseType::String));
    inner.arc_to_output("T2", "y", "b").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut outer = DataflowBuilder::new("outer");
    outer.input("xs", PortType::list(BaseType::String));
    outer.nested("sub", inner);
    outer.arc_from_input("xs", "sub", "a").unwrap();
    outer.output("ys", PortType::list(BaseType::String));
    outer.arc_to_output("sub", "b", "ys").unwrap();
    let df = outer.build().unwrap();

    let (store, run) = execute(&df, vec![("xs".into(), Value::from(vec!["u", "v", "w"]))]);

    // Focus the outer workflow: fine-grained through the nested scope.
    for i in 0..3u32 {
        let q = LineageQuery::focused(
            PortRef::new("outer", "ys"),
            Index::single(i),
            [ProcessorName::from("outer")],
        );
        let ans = check(&df, &store, run, &q);
        assert_eq!(ans.bindings.len(), 1, "{ans}");
        assert_eq!(ans.bindings[0].index, Index::single(i));
    }

    // Focus an inner processor by its qualified name.
    let q = LineageQuery::focused(
        PortRef::new("outer", "ys"),
        Index::single(2),
        [ProcessorName::from("sub/T2")],
    );
    let ans = check(&df, &store, run, &q);
    assert_eq!(ans.bindings.len(), 1);
    assert_eq!(ans.bindings[0].value, Value::str("w-a"));

    // Focus the nested scope itself (its input bindings).
    let q = LineageQuery::focused(
        PortRef::new("outer", "ys"),
        Index::single(0),
        [ProcessorName::from("sub")],
    );
    let ans = check(&df, &store, run, &q);
    assert_eq!(ans.bindings.len(), 1);
    assert_eq!(ans.bindings[0].port, PortRef::new("sub", "a"));
    assert_eq!(ans.bindings[0].value, Value::str("u"));
}

#[test]
fn nested_dataflow_equivalence_with_outer_iteration() {
    // The nested workflow declares an ATOM input, so the outer list drives
    // implicit iteration OVER the nested processor. Boundary events carry
    // absolute indices; both algorithms must stay fine-grained.
    let mut inner = DataflowBuilder::new("inner");
    inner.input("a", PortType::atom(BaseType::String));
    inner
        .processor_with_behavior("T", "tag_a")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner.arc_from_input("a", "T", "x").unwrap();
    inner.output("b", PortType::atom(BaseType::String));
    inner.arc_to_output("T", "y", "b").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut outer = DataflowBuilder::new("outer");
    outer.input("xs", PortType::list(BaseType::String));
    outer.nested("sub", inner);
    outer.arc_from_input("xs", "sub", "a").unwrap();
    outer.output("ys", PortType::list(BaseType::String));
    outer.arc_to_output("sub", "b", "ys").unwrap();
    let df = outer.build().unwrap();

    let (store, run) = execute(&df, vec![("xs".into(), Value::from(vec!["u", "v", "w"]))]);

    for i in 0..3u32 {
        let q = LineageQuery::focused(
            PortRef::new("outer", "ys"),
            Index::single(i),
            [ProcessorName::from("outer")],
        );
        let ans = check(&df, &store, run, &q);
        assert_eq!(ans.bindings.len(), 1, "index [{i}]: {ans}");
        assert_eq!(ans.bindings[0].index, Index::single(i));
    }
}

#[test]
fn multi_run_answers_are_per_run() {
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::list(BaseType::String));
    b.processor_with_behavior("A", "tag_a")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.arc_from_input("in", "A", "x").unwrap();
    b.output("out", PortType::list(BaseType::String));
    b.arc_to_output("A", "y", "out").unwrap();
    let df = b.build().unwrap();

    let store = TraceStore::in_memory();
    let engine = Engine::new(registry());
    let mut runs = Vec::new();
    for r in 0..4 {
        let inputs =
            vec![("in".to_string(), Value::from(vec![format!("r{r}x0"), format!("r{r}x1")]))];
        runs.push(engine.execute(&df, inputs, &store).unwrap().run_id);
    }

    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::single(1),
        [ProcessorName::from("wf")],
    );
    let ip = IndexProj::new(&df);
    let ni_answers = NaiveLineage::new().run_multi(&store, &runs, &q).unwrap();
    let ip_answers = ip.run_multi(&store, &runs, &q).unwrap();
    for (r, (ni, ip)) in ni_answers.iter().zip(&ip_answers).enumerate() {
        assert!(ni.same_bindings(ip));
        assert_eq!(ni.bindings[0].value, Value::str(&format!("r{r}x1")));
    }
}

#[test]
fn indexproj_issues_fewer_trace_queries_on_focused_paths() {
    // The efficiency claim in miniature: a long chain, focused query on
    // the far end — NI touches every node, INDEXPROJ only the focus.
    let mut b = DataflowBuilder::new("wf");
    b.input("in", PortType::list(BaseType::String));
    let names: Vec<String> = (0..20).map(|i| format!("P{i}")).collect();
    for n in &names {
        b.processor_with_behavior(n, "tag_a")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
    }
    b.arc_from_input("in", &names[0], "x").unwrap();
    for w in names.windows(2) {
        b.arc(&w[0], "y", &w[1], "x").unwrap();
    }
    b.output("out", PortType::list(BaseType::String));
    b.arc_to_output(&names[19], "y", "out").unwrap();
    let df = b.build().unwrap();
    let (store, run) = execute(&df, vec![("in".into(), Value::from(vec!["a", "b", "c"]))]);

    let q = LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::single(0),
        [ProcessorName::from("wf")],
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    assert_eq!(ip.trace_queries, 1); // one Q lookup at the focus
    assert!(ni.trace_queries > 20, "NI did {} queries", ni.trace_queries);
}
