//! Lineage over *partial* traces: a cross-product in which one element
//! fails. The failed invocation emits an error token, its siblings
//! complete, and both query algorithms — NI walking the trace, INDEXPROJ
//! projecting through the spec — must (a) still agree everywhere, (b)
//! leave sibling lineage bit-identical to a fault-free run, and (c) trace
//! the error output back to the originating input element, with the
//! attempt count preserved in the stored token.

use prov_core::{IndexProj, LineageQuery, NaiveLineage};
use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
use prov_engine::{
    builtin, Backoff, BehaviorRegistry, Engine, RetryPolicy, RunStatus, VirtualClock,
};
use prov_model::{Index, PortRef, ProcessorName, RunId, Value};
use prov_obs::Obs;
use prov_store::TraceStore;
use std::sync::Arc;

/// Two lists joined by a cross product: a(3) × b(2) → 6 output elements.
fn cross_df() -> Dataflow {
    let mut b = DataflowBuilder::new("wf");
    b.input("a", PortType::list(BaseType::String));
    b.input("b", PortType::list(BaseType::String));
    b.processor_with_behavior("LA", "la")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("LB", "tag_b")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("J", "pair")
        .in_port("x", PortType::atom(BaseType::String))
        .in_port("y", PortType::atom(BaseType::String))
        .out_port("z", PortType::atom(BaseType::String));
    b.arc_from_input("a", "LA", "x").unwrap();
    b.arc_from_input("b", "LB", "x").unwrap();
    b.arc("LA", "y", "J", "x").unwrap();
    b.arc("LB", "y", "J", "y").unwrap();
    b.output("out", PortType::nested(BaseType::String, 2));
    b.arc_to_output("J", "z", "out").unwrap();
    b.build().unwrap()
}

/// A registry whose "la" stage fails on the given element value (never,
/// when `poison` is `None`) and tags "-a" otherwise.
fn registry(poison: Option<&str>) -> BehaviorRegistry {
    let poison = poison.map(str::to_string);
    let mut r = BehaviorRegistry::new().with_builtins();
    r.register("tag_b", builtin::tagger("-b"));
    r.register_fn("pair", |inputs| {
        let a = builtin::expect_str(&inputs[0])?;
        let b = builtin::expect_str(&inputs[1])?;
        Ok(vec![Value::str(&format!("{a}+{b}"))])
    });
    r.register_fn("la", move |inputs: &[Value]| {
        let s = builtin::expect_str(&inputs[0])?;
        if Some(s) == poison.as_deref() {
            return Err(format!("no tag for {s}"));
        }
        Ok(vec![Value::str(&format!("{s}-a"))])
    });
    r
}

fn inputs() -> Vec<(String, Value)> {
    vec![
        ("a".into(), Value::from(vec!["a0", "a1", "a2"])),
        ("b".into(), Value::from(vec!["b0", "b1"])),
    ]
}

fn run_with(engine: Engine) -> (TraceStore, prov_engine::RunOutcome) {
    let store = TraceStore::in_memory();
    let outcome = engine.execute(&cross_df(), inputs(), &store).unwrap();
    (store, outcome)
}

/// NI and INDEXPROJ must agree; returns the (normalised) answer.
fn check(
    df: &Dataflow,
    store: &TraceStore,
    run: RunId,
    q: &LineageQuery,
) -> prov_core::LineageAnswer {
    let ni = NaiveLineage::new().run(store, run, q).unwrap();
    let ip = IndexProj::new(df).run(store, run, q).unwrap();
    assert!(ni.same_bindings(&ip), "divergence on {q}:\nNI: {ni}\nIP: {ip}");
    ni
}

fn out_query(i: u32, j: u32, focus: &str) -> LineageQuery {
    LineageQuery::focused(
        PortRef::new("wf", "out"),
        Index::from_slice(&[i, j]),
        [ProcessorName::from(focus)],
    )
}

#[test]
fn failed_element_isolates_and_lineage_stays_equivalent() {
    let df = cross_df();
    let (clean_store, clean) = run_with(Engine::new(registry(None)));
    assert_eq!(clean.status, RunStatus::Completed);
    let (store, outcome) = run_with(Engine::new(registry(Some("a1"))));

    // Element k = 1 of input `a` failed; its cross-product row carries
    // error tokens, every sibling completed.
    let failed = outcome.failed_xforms();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].processor, ProcessorName::from("LA"));
    assert_eq!(failed[0].index, Index::single(1));
    assert_eq!(failed[0].attempts, 1);
    let out = outcome.output("out").unwrap();
    let clean_out = clean.output("out").unwrap();
    for i in 0..3u32 {
        for j in 0..2u32 {
            let idx = Index::from_slice(&[i, j]);
            let elem = out.enumerate_at(2).into_iter().find(|(q, _)| *q == idx).unwrap().1;
            if i == 1 {
                let tok = elem.first_error().unwrap();
                assert_eq!(&*tok.origin, "LA");
                assert_eq!(tok.attempts, 1);
                assert!(tok.message.contains("no tag for a1"));
            } else {
                let clean_elem =
                    clean_out.enumerate_at(2).into_iter().find(|(q, _)| *q == idx).unwrap().1;
                assert_eq!(elem, clean_elem, "sibling [{i},{j}] diverged");
            }
        }
    }

    // Lineage of every element: NI ≡ INDEXPROJ on the partial trace, and
    // sibling answers are identical to the fault-free run's.
    for i in 0..3u32 {
        for j in 0..2u32 {
            let q = out_query(i, j, "wf");
            let ans = check(&df, &store, RunId(0), &q);
            let a = ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "a")).unwrap();
            assert_eq!(a.value, Value::str(&format!("a{i}")));
            let bb = ans.bindings.iter().find(|b| b.port == PortRef::new("wf", "b")).unwrap();
            assert_eq!(bb.value, Value::str(&format!("b{j}")));
            if i != 1 {
                let clean_ans = check(&df, &clean_store, RunId(0), &q);
                assert!(ans.same_bindings(&clean_ans), "sibling lineage [{i},{j}] diverged");
            }
        }
    }

    // The error output's lineage, focused on the failing processor itself,
    // resolves to exactly element k of the iteration.
    let ans = check(&df, &store, RunId(0), &out_query(1, 0, "LA"));
    let la_in = ans.bindings.iter().find(|b| b.port == PortRef::new("LA", "x")).unwrap();
    assert_eq!(la_in.index, Index::single(1));
    assert_eq!(la_in.value, Value::str("a1"));
}

#[test]
fn stored_error_token_carries_origin_and_attempt_count() {
    // Exhaust a 3-attempt policy: the trace must answer "which element
    // caused this error and after how many attempts" from the stored
    // xform row alone.
    let clock = Arc::new(VirtualClock::new());
    let engine = Engine::new(registry(Some("a1")))
        .with_retry_for("LA", RetryPolicy::attempts(3).with_backoff(Backoff::Fixed { micros: 50 }))
        .with_clock(clock.clone());
    let (store, outcome) = run_with(engine);
    assert_eq!(outcome.failed_xforms().len(), 1);
    assert_eq!(outcome.failed_xforms()[0].attempts, 3);
    assert_eq!(clock.sleeps(), vec![50, 50]);

    let rows = store.xforms_producing(RunId(0), &"LA".into(), "y", &Index::single(1));
    assert_eq!(rows.len(), 1);
    let out_port = rows[0].ports.iter().find(|p| &*p.port == "y").unwrap();
    let stored = store.value(out_port.value).unwrap();
    let tok = stored.first_error().unwrap();
    assert_eq!(&*tok.origin, "LA");
    assert_eq!(tok.attempts, 3);

    // Downstream J consumed the token and short-circuited: its error
    // output still traces back through the join to a[1] AND b[j].
    let df = cross_df();
    for j in 0..2u32 {
        let ans = check(&df, &store, RunId(0), &out_query(1, j, "wf"));
        assert!(ans.bindings.iter().any(|b| b.value == Value::str("a1")));
        assert!(ans.bindings.iter().any(|b| b.value == Value::str(&format!("b{j}"))));
    }
}

#[test]
fn retry_metrics_match_injected_flake_count() {
    // A flake that fails exactly twice, a policy allowing three attempts:
    // the run completes, `engine.retries` equals the injected flake count,
    // and the trace is indistinguishable from a fault-free run's.
    let mut reg = registry(None);
    reg.register("la", builtin::flaky(2, builtin::tagger("-a")));
    let obs = Obs::enabled();
    let clock = Arc::new(VirtualClock::new());
    let engine = Engine::new(reg)
        .with_obs(obs.clone())
        .with_retry(RetryPolicy::attempts(3))
        .with_clock(clock);
    let (store, outcome) = run_with(engine);
    assert_eq!(outcome.status, RunStatus::Completed);
    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counter("engine.retries"), 2);
    assert_eq!(snap.counter("engine.failed_invocations"), 0);

    let (clean_store, _) = run_with(Engine::new(registry(None)));
    let df = cross_df();
    for i in 0..3u32 {
        for j in 0..2u32 {
            let q = out_query(i, j, "wf");
            let ans = check(&df, &store, RunId(0), &q);
            let clean_ans = check(&df, &clean_store, RunId(0), &q);
            assert!(ans.same_bindings(&clean_ans));
        }
    }
}
