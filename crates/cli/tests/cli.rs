//! End-to-end tests of the `tprov` binary: each test drives real
//! subcommands against a temporary durable database.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tprov(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tprov")).args(args).output().expect("tprov runs")
}

fn tprov_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tprov"))
        .args(args)
        .envs(envs.iter().map(|(k, v)| (k.to_string(), v.to_string())))
        .output()
        .expect("tprov runs")
}

/// Sorted field names of a JSON object (the vendored tree model stores
/// objects as ordered pairs).
fn sorted_keys(v: &serde_json::Value) -> Vec<String> {
    let serde_json::Value::Object(fields) = v else { panic!("expected object, got {v:?}") };
    let mut keys: Vec<String> = fields.iter().map(|(k, _)| k.clone()).collect();
    keys.sort_unstable();
    keys
}

fn json_u64(v: &serde_json::Value) -> u64 {
    match v {
        serde_json::Value::Int(i) => u64::try_from(*i).unwrap(),
        serde_json::Value::Uint(u) => *u,
        other => panic!("expected unsigned number, got {other:?}"),
    }
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

struct TempDb {
    path: PathBuf,
}

impl TempDb {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join("tprov-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TempDb { path }
    }

    fn arg(&self) -> &str {
        self.path.to_str().unwrap()
    }

    fn sidecar(&self, workflow: &str) -> String {
        format!("{}.{workflow}.json", self.arg())
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        // Every sidecar hangs off the db file name (`<db>.<suffix>`):
        // workflow specs, journal/slow logs, snapshots, replication state.
        if let (Some(dir), Some(name)) =
            (self.path.parent(), self.path.file_name().and_then(|n| n.to_str()))
        {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if entry.file_name().to_string_lossy().starts_with(&format!("{name}.")) {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }
}

#[test]
fn help_prints_usage_and_unknown_command_fails() {
    let out = tprov(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("commands:"));

    let out = tprov(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn testbed_runs_lineage_round_trip() {
    let db = TempDb::new("testbed");
    let out = tprov(&["testbed", "--db", db.arg(), "--l", "4", "--d", "3", "--runs", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("run:0"));
    assert!(stdout(&out).contains("run:1"));

    let out = tprov(&["runs", "--db", db.arg()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("workflow=testbed"));
    assert!(stdout(&out).contains("finished"));

    // INDEXPROJ lineage via the saved workflow spec.
    let out = tprov(&[
        "lineage",
        "--db",
        db.arg(),
        "--workflow",
        &db.sidecar("testbed"),
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "1,2",
        "--focus",
        "LISTGEN_1",
        "--all-runs",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("plan: 1 trace lookups"));
    assert!(text.contains("⟨LISTGEN_1:size[], 3⟩"));
    assert!(text.matches("1 binding(s)").count() == 2); // both runs

    // NI gives the same binding.
    let out = tprov(&[
        "lineage",
        "--db",
        db.arg(),
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "1,2",
        "--focus",
        "LISTGEN_1",
        "--run",
        "0",
        "--algo",
        "ni",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("⟨LISTGEN_1:size[], 3⟩"));
}

#[test]
fn query_command_parses_paper_notation() {
    let db = TempDb::new("query");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    let out =
        tprov(&["query", "--db", db.arg(), "--query", "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("⟨LISTGEN_1:size[], 2⟩"));

    // Impact direction through the same entry point.
    let out =
        tprov(&["query", "--db", db.arg(), "--query", "impact(<testbed:ListSize[]>, {testbed})"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("testbed:product"));

    // Malformed queries fail with a parse error.
    let out = tprov(&["query", "--db", db.arg(), "--query", "lin(oops"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("parse error"));
}

#[test]
fn audit_reports_clean_for_engine_traces() {
    let db = TempDb::new("audit");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    let out =
        tprov(&["audit", "--db", db.arg(), "--workflow", &db.sidecar("testbed"), "--all-runs"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"));
}

#[test]
fn gk_and_dot_commands_work() {
    let db = TempDb::new("gk");
    let out = tprov(&["gk", "--db", db.arg(), "--lists", "2", "--genes", "1"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("commonPathways"));

    let out = tprov(&["dot", "--workflow", &db.sidecar("genes2Kegg")]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("digraph \"genes2Kegg\""));

    let out = tprov(&["trace-dot", "--db", db.arg(), "--run", "0"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("digraph \"run:0\""));
    assert!(stderr(&out).contains("nodes"));
}

#[test]
fn run_command_executes_workflow_json_with_builtins() {
    let db = TempDb::new("runjson");
    // Author a workflow JSON via the library, then execute it via the CLI.
    let mut b = prov_dataflow::DataflowBuilder::new("upper");
    b.input("xs", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.processor_with_behavior("U", "string_upper")
        .in_port("x", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String))
        .out_port("y", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String));
    b.arc_from_input("xs", "U", "x").unwrap();
    b.output("ys", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.arc_to_output("U", "y", "ys").unwrap();
    let df = b.build().unwrap();
    let wf_path = format!("{}.authored.json", db.arg());
    std::fs::write(&wf_path, serde_json::to_string(&df).unwrap()).unwrap();

    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        r#"xs={"List":[{"Atom":{"Str":"ab"}},{"Atom":{"Str":"cd"}}]}"#,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("\"AB\""));
    assert!(stdout(&out).contains("\"CD\""));
    let _ = std::fs::remove_file(&wf_path);
}

#[test]
fn run_partial_failure_exits_3_and_reports_failures_in_json() {
    let db = TempDb::new("partial");
    // `string_upper` fails on the Int element: element 1 of the iteration
    // becomes an error token while its sibling completes.
    let mut b = prov_dataflow::DataflowBuilder::new("upper");
    b.input("xs", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.processor_with_behavior("U", "string_upper")
        .in_port("x", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String))
        .out_port("y", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String));
    b.arc_from_input("xs", "U", "x").unwrap();
    b.output("ys", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.arc_to_output("U", "y", "ys").unwrap();
    let df = b.build().unwrap();
    let wf_path = format!("{}.authored.json", db.arg());
    std::fs::write(&wf_path, serde_json::to_string(&df).unwrap()).unwrap();
    let mixed = r#"xs={"List":[{"Atom":{"Str":"ab"}},{"Atom":{"Int":3}}]}"#;

    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        mixed,
        "--max-attempts",
        "2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(3), "partial failure must exit 3: {}", stderr(&out));
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(report.get("status").unwrap().as_str(), Some("partial-failure"));
    assert_eq!(report.get("workflow").unwrap().as_str(), Some("upper"));
    let failed = report.get("failed_xforms").unwrap().as_array().unwrap();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].get("processor").unwrap().as_str(), Some("U"));
    let attempts = format!("{:?}", failed[0].get("attempts").unwrap());
    assert!(attempts.contains('2'), "--max-attempts carried into the report: {attempts}");
    // The sibling element still made it to the output.
    let ys = format!("{:?}", report.get("outputs").unwrap().get("ys").unwrap());
    assert!(ys.contains("AB"), "{ys}");

    // Human mode: failure summary on stderr, same exit code 3.
    let out = tprov(&["run", "--db", db.arg(), "--workflow", &wf_path, "--input", mixed]);
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr(&out).contains("FAILED U"), "{}", stderr(&out));
    assert!(stdout(&out).contains("partial-failure"));

    // --fail-fast restores abort-on-first-error: the run dies with a
    // behavior error (generic exit 1), not a partial trace.
    let out =
        tprov(&["run", "--db", db.arg(), "--workflow", &wf_path, "--input", mixed, "--fail-fast"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("U"), "{}", stderr(&out));

    // A clean input exits 0 with status "completed".
    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        r#"xs={"List":[{"Atom":{"Str":"ab"}}]}"#,
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(report.get("status").unwrap().as_str(), Some("completed"));
    assert!(report.get("failed_xforms").unwrap().as_array().unwrap().is_empty());
    let _ = std::fs::remove_file(&wf_path);
}

#[test]
fn lineage_uses_db_registered_workflow_when_flag_omitted() {
    let db = TempDb::new("registry");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    // No --workflow: the spec registered in the db is used.
    let out = tprov(&[
        "lineage",
        "--db",
        db.arg(),
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "0,1",
        "--focus",
        "LISTGEN_1",
        "--run",
        "0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("⟨LISTGEN_1:size[], 2⟩"));

    // Two registered workflows → ambiguous without --wf.
    assert!(tprov(&["gk", "--db", db.arg()]).status.success());
    let out = tprov(&[
        "lineage",
        "--db",
        db.arg(),
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "0,0",
        "--focus",
        "LISTGEN_1",
        "--run",
        "0",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--wf"));
    // Disambiguated by --wf.
    let out = tprov(&[
        "lineage",
        "--db",
        db.arg(),
        "--wf",
        "testbed",
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "0,0",
        "--focus",
        "LISTGEN_1",
        "--run",
        "0",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn diff_command_compares_two_runs() {
    let db = TempDb::new("diff");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "4"]).status.success());
    let out = tprov(&[
        "diff",
        "--db",
        db.arg(),
        "--a",
        "0",
        "--b",
        "1",
        "--target",
        "2TO1_FINAL:Y",
        "--index",
        "0,1",
        "--focus",
        "LISTGEN_1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("1 only in A, 1 only in B"));
    assert!(text.contains("divergent iteration structure"));
    assert!(text.contains("2TO1_FINAL: 4 vs 16 invocations"));
}

#[test]
fn find_value_locates_bindings_and_lineage() {
    let db = TempDb::new("findval");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "2", "--d", "3"]).status.success());
    let out = tprov(&[
        "find-value",
        "--db",
        db.arg(),
        "--value",
        "item-1",
        "--run",
        "0",
        "--lineage",
        "--focus",
        "LISTGEN_1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("appears in"));
    assert!(text.contains("⟨LISTGEN_1:list[1], \"item-1\"⟩"));
    assert!(text.contains("⇐ ⟨LISTGEN_1:size[], 3⟩"));
    // An absent value reports zero bindings.
    let out = tprov(&["find-value", "--db", db.arg(), "--value", "ghost", "--run", "0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("0 binding(s)"));
}

/// The ISSUE acceptance workflow: one base-type-mismatched arc, one dead
/// processor, one shadowed default — three findings, three distinct codes.
fn smelly_workflow_json() -> String {
    use prov_dataflow::{BaseType, DataflowBuilder, PortType};
    let mut b = DataflowBuilder::new("smelly");
    b.input("a", PortType::atom(BaseType::Int));
    b.processor_with_behavior("Q", "identity")
        .in_port("x", PortType::atom(BaseType::String))
        .in_port_with_default("z", PortType::atom(BaseType::Int), prov_model::Value::int(7))
        .out_port("y", PortType::atom(BaseType::String));
    b.processor_with_behavior("D", "identity")
        .in_port("x", PortType::atom(BaseType::Int))
        .out_port("y", PortType::atom(BaseType::Int));
    b.arc_from_input("a", "Q", "x").unwrap(); // Int -> String: E001
    b.arc_from_input("a", "Q", "z").unwrap(); // shadows default: W004
    b.arc_from_input("a", "D", "x").unwrap(); // D reaches no output: W001
    b.output("ys", PortType::atom(BaseType::String));
    b.arc_to_output("Q", "y", "ys").unwrap();
    serde_json::to_string(&b.build().unwrap()).unwrap()
}

#[test]
fn lint_reports_distinct_codes_and_exits_nonzero() {
    let db = TempDb::new("lint");
    let wf_path = format!("{}.smelly.json", db.arg());
    std::fs::write(&wf_path, smelly_workflow_json()).unwrap();

    let out = tprov(&["lint", "--workflow", &wf_path]);
    assert!(!out.status.success(), "error-level findings must exit nonzero");
    let text = stdout(&out);
    for code in ["E001", "W001", "W004"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
    assert!(text.contains("1 error(s)"), "{text}");
    assert!(stderr(&out).contains("lint: 1 error(s)"));

    // JSON format carries the same codes, machine-readably.
    let out = tprov(&["lint", "--workflow", &wf_path, "--format", "json"]);
    assert!(!out.status.success());
    let parsed: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let codes: Vec<&str> =
        parsed.as_array().unwrap().iter().map(|d| d["code"].as_str().unwrap()).collect();
    assert!(codes.contains(&"E001") && codes.contains(&"W001") && codes.contains(&"W004"));

    // Diagnostics overlay on the DOT export colors the offending nodes.
    let out = tprov(&["dot", "--workflow", &wf_path, "--lint"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let dot = stdout(&out);
    assert!(dot.contains("color=red"), "{dot}");
    assert!(dot.contains("color=orange"), "{dot}");

    let _ = std::fs::remove_file(&wf_path);
}

#[test]
fn explain_verifies_plans_and_checks_costs() {
    let db = TempDb::new("explain");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "4", "--d", "3"]).status.success());

    // A focused exact query: every step is a point probe, the runtime
    // check agrees with the prediction, exit 0.
    let out = tprov(&[
        "explain",
        "lin(<2TO1_FINAL:Y[1]>, {CHAIN_A_2, testbed})",
        "--db",
        db.arg(),
        "--check",
    ]);
    assert!(out.status.success(), "{}{}", stdout(&out), stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("point-probe"), "{text}");
    assert!(text.contains("check: predicted"), "{text}");
    assert!(!text.contains("FAILED"), "{text}");

    // Default mode (no query): unfocused coarse queries report W101
    // full-scan steps — warnings, so the exit stays 0.
    let out = tprov(&["explain", "--db", db.arg()]);
    assert!(out.status.success(), "{}{}", stdout(&out), stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("full-scan"), "{text}");
    assert!(text.contains("W101"), "{text}");

    // Modelling away the xform_in index turns those steps into E101
    // unservable findings and the exit nonzero — the CI gate behaviour.
    let out = tprov(&["explain", "--db", db.arg(), "--without-index", "xform_in"]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("E101"), "{}", stdout(&out));
    assert!(stderr(&out).contains("error-level finding"), "{}", stderr(&out));

    // JSON output carries the contract fields, machine-readably.
    let out = tprov(&["explain", "--db", db.arg(), "--format", "json", "--check"]);
    assert!(out.status.success(), "{}{}", stdout(&out), stderr(&out));
    let parsed: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let report = &parsed.as_array().unwrap()[0];
    assert_eq!(report["servable"], serde_json::Value::Bool(true));
    let step = &report["steps"].as_array().unwrap()[0];
    for key in ["index", "class", "expected_depth", "predicted_lookups", "predicted_rows"] {
        assert!(step.get(key).is_some(), "missing {key} in {step:?}");
    }
    assert_eq!(report["check"]["ok"], serde_json::Value::Bool(true));
    let codes: Vec<&str> = report["diagnostics"]
        .as_array()
        .unwrap()
        .iter()
        .map(|d| d["code"].as_str().unwrap())
        .collect();
    assert!(codes.contains(&"W101"), "{codes:?}");
}

#[test]
fn lint_clean_workflow_exits_zero() {
    let db = TempDb::new("lintclean");
    // The genes2Kegg sidecar spec is a real, clean workflow.
    assert!(tprov(&["gk", "--db", db.arg()]).status.success());
    let out = tprov(&["lint", "--workflow", &db.sidecar("genes2Kegg")]);
    assert!(out.status.success(), "{}{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("0 error(s)") || stdout(&out).contains("no diagnostics"));
}

/// The `upper` workflow used by the run/resume tests: `string_upper`
/// mapped over a list input.
fn upper_workflow_json() -> String {
    let mut b = prov_dataflow::DataflowBuilder::new("upper");
    b.input("xs", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.processor_with_behavior("U", "string_upper")
        .in_port("x", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String))
        .out_port("y", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String));
    b.arc_from_input("xs", "U", "x").unwrap();
    b.output("ys", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.arc_to_output("U", "y", "ys").unwrap();
    serde_json::to_string(&b.build().unwrap()).unwrap()
}

/// Golden test for the `run --json` schema: scripts depend on this exact
/// key set, so growing it is fine only through deliberate review here.
#[test]
fn run_json_schema_is_locked() {
    let db = TempDb::new("schema");
    let wf_path = format!("{}.authored.json", db.arg());
    std::fs::write(&wf_path, upper_workflow_json()).unwrap();

    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        r#"xs={"List":[{"Atom":{"Str":"ab"}}]}"#,
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let serde_json::Value::Object(fields) = &report else {
        panic!("run --json must print an object, got {report:?}")
    };
    let mut keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(keys, ["failed_xforms", "outputs", "resumed_from", "run", "status", "workflow"]);
    assert!(
        matches!(report["run"], serde_json::Value::Int(0) | serde_json::Value::Uint(0)),
        "{:?}",
        report["run"]
    );
    assert_eq!(report["workflow"].as_str(), Some("upper"));
    assert_eq!(report["status"].as_str(), Some("completed"));
    assert_eq!(report["resumed_from"], serde_json::Value::Null, "fresh runs carry null");
    let _ = std::fs::remove_file(&wf_path);
}

#[test]
fn run_resume_replays_settled_state_and_keeps_exit_codes() {
    let db = TempDb::new("resume");
    let wf_path = format!("{}.authored.json", db.arg());
    std::fs::write(&wf_path, upper_workflow_json()).unwrap();
    let mixed = r#"xs={"List":[{"Atom":{"Str":"ab"}},{"Atom":{"Int":3}}]}"#;

    // A partial-failure run (the Int element fails)...
    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        mixed,
        "--max-attempts",
        "2",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let fresh: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();

    // ...resumed: every invocation is already settled in the trace, so the
    // report is identical (outputs, failures, attempts) except for
    // `resumed_from`, and the exit code is still 3.
    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        mixed,
        "--resume",
        "0",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let resumed: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert!(
        matches!(resumed["resumed_from"], serde_json::Value::Int(0) | serde_json::Value::Uint(0)),
        "{:?}",
        resumed["resumed_from"]
    );
    assert_eq!(resumed["run"], fresh["run"], "resume keeps the original run id");
    assert_eq!(resumed["outputs"], fresh["outputs"]);
    assert_eq!(resumed["status"], fresh["status"]);
    assert_eq!(resumed["failed_xforms"], fresh["failed_xforms"]);

    // Resuming a run the store has never seen is a plain usage error.
    let out = tprov(&[
        "run",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--input",
        mixed,
        "--resume",
        "99",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot resume"), "{}", stderr(&out));
    let _ = std::fs::remove_file(&wf_path);
}

/// Golden test for `tprov metrics --format json`: scrapers depend on the
/// snapshot's top-level shape and the histogram summary fields (including
/// the midpoint-interpolated quantiles), so growing either set is fine
/// only through deliberate review here.
#[test]
fn metrics_json_schema_is_locked() {
    let db = TempDb::new("metricsjson");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    let out = tprov(&["metrics", "--db", db.arg(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let snap: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(sorted_keys(&snap), ["counters", "gauges", "histograms"]);
    // Histogram summaries carry the quantile contract fields.
    let serde_json::Value::Object(hists) = &snap["histograms"] else {
        panic!("histograms not an object")
    };
    let (name, hist) = hists.first().expect("at least one histogram");
    assert_eq!(sorted_keys(hist), ["count", "max", "p50", "p95", "p99", "sum"], "histogram {name}");
    // Recovery's verdict on the WAL tail is part of the gauge contract:
    // scrapers alert on a nonzero recovered_tail_state.
    let gauges = sorted_keys(&snap["gauges"]);
    for required in ["wal.recovered_tail_state", "wal.recovered_tail_offset"] {
        assert!(gauges.iter().any(|g| g == required), "missing gauge {required} in {gauges:?}");
    }
    assert_eq!(json_u64(&snap["gauges"]["wal.recovered_tail_state"]), 0, "clean db");
    // The text rendering surfaces the same quantiles.
    let out = tprov(&["metrics", "--db", db.arg()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("p95="), "{}", stdout(&out));

    // A `<db>.serve.json` sidecar (written by `tprov serve` at shutdown)
    // folds the daemon's serve.* family into the same snapshot; the
    // family's member names are part of the scrape contract.
    let serve_sidecar = format!("{}.serve.json", db.arg());
    std::fs::write(
        &serve_sidecar,
        r#"{"serve.active_conns":0,"serve.backpressure_waits":3,"serve.conns_accepted":7,
            "serve.conns_refused":1,"serve.draining":1,"serve.ingest_batches":40,
            "serve.queries":5,"serve.request_timeouts":2}"#,
    )
    .unwrap();
    let out = tprov(&["metrics", "--db", db.arg(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let snap: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let gauges = sorted_keys(&snap["gauges"]);
    for required in [
        "serve.active_conns",
        "serve.backpressure_waits",
        "serve.conns_accepted",
        "serve.conns_refused",
        "serve.draining",
        "serve.ingest_batches",
        "serve.queries",
        "serve.request_timeouts",
    ] {
        assert!(gauges.iter().any(|g| g == required), "missing gauge {required} in {gauges:?}");
    }
    assert_eq!(json_u64(&snap["gauges"]["serve.conns_accepted"]), 7);
    let _ = std::fs::remove_file(&serve_sidecar);
}

/// `tprov wal verify`: a healthy store verifies with exit 0, a torn tail
/// (interrupted final write) is still healthy, and a corrupt frame in the
/// middle of the log exits 1 naming the damaged byte offset.
#[test]
fn wal_verify_distinguishes_torn_from_corrupt() {
    let db = TempDb::new("walverify");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());

    let out = tprov(&["wal", "verify", db.arg()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"), "{}", stdout(&out));
    assert!(stdout(&out).contains("tail clean"), "{}", stdout(&out));

    // A torn tail: chop a few bytes off the end (a crashed writer).
    let intact = std::fs::read(&db.path).unwrap();
    std::fs::write(&db.path, &intact[..intact.len() - 5]).unwrap();
    let out = tprov(&["wal", "verify", db.arg()]);
    assert!(out.status.success(), "torn tail is not corruption: {}", stdout(&out));
    assert!(stdout(&out).contains("torn tail"), "{}", stdout(&out));

    // A corrupt frame: flip a byte inside the first frame's payload
    // (frames are `len | crc | payload`, so byte 10 is payload), the CRC
    // catches it and everything after the damage is unreachable.
    let mut bytes = intact.clone();
    bytes[10] ^= 0xFF;
    std::fs::write(&db.path, &bytes).unwrap();
    let out = tprov(&["wal", "verify", db.arg()]);
    assert!(!out.status.success(), "corruption must fail verification");
    assert!(stdout(&out).contains("CORRUPT"), "{}", stdout(&out));

    std::fs::write(&db.path, &intact).unwrap();
}

/// Kills a spawned `tprov` child on drop so a failed assertion cannot
/// leak a background server process.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Polls an address sidecar written by `replicate serve`/`follow --serve`.
fn wait_addr(path: &str) -> String {
    for _ in 0..200 {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.trim().is_empty() {
                return addr.trim().to_string();
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("no address appeared at {path}");
}

/// End-to-end replication through the CLI: `replicate serve` a primary,
/// `replicate follow --once` a replica to byte-identical convergence,
/// surface the lag gauges via `metrics`, answer a bounded-staleness query
/// through `--replica`, and get the typed refusal from a replica that has
/// never reached its primary.
#[test]
fn replicate_serve_follow_query_and_stale_refusal() {
    let db = TempDb::new("replsrv");
    let replica = TempDb::new("replsrv-replica");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());

    let server = ChildGuard(
        std::process::Command::new(env!("CARGO_BIN_EXE_tprov"))
            .args(["replicate", "serve", "--db", db.arg(), "--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("serve spawns"),
    );
    let addr = wait_addr(&format!("{}.repl.addr", db.arg()));

    // Seed the replica to caught-up and stop (exit 0 = converged).
    let out = tprov(&[
        "replicate",
        "follow",
        "--db",
        replica.arg(),
        "--from",
        &addr,
        "--once",
        "--timeout-ms",
        "30000",
    ]);
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("caught_up=true"), "{}", stdout(&out));
    assert_eq!(
        std::fs::read(&replica.path).unwrap(),
        std::fs::read(&db.path).unwrap(),
        "replica WAL must be byte-identical to the primary's"
    );

    // The replication sidecar feeds `tprov metrics` lag gauges.
    let out = tprov(&["metrics", "--db", replica.arg(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let snap: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(json_u64(&snap["gauges"]["repl.lag_frames"]), 0);
    assert_eq!(json_u64(&snap["gauges"]["repl.lag_bytes"]), 0);

    // A live replica answers `query --replica` within a zero lag bound,
    // rendering exactly like a local query against the same bytes.
    let qreplica = TempDb::new("replsrv-live");
    let live = ChildGuard(
        std::process::Command::new(env!("CARGO_BIN_EXE_tprov"))
            .args([
                "replicate",
                "follow",
                "--db",
                qreplica.arg(),
                "--from",
                &addr,
                "--serve",
                "127.0.0.1:0",
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("follow spawns"),
    );
    let qaddr = wait_addr(&format!("{}.replica.addr", qreplica.arg()));
    let query = "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})";
    let out = retry_query(&["query", "--replica", &qaddr, "--query", query, "--max-lag", "0"]);
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("lag 0 frames"), "{}", stdout(&out));
    let answer_lines = |s: &str| {
        s.lines()
            .filter(|l| l.contains("binding(s):") || l.starts_with("  "))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let local = tprov(&["query", "--db", db.arg(), "--query", query, "--algo", "ni"]);
    assert!(local.status.success(), "{}", stderr(&local));
    let local_answers = answer_lines(&stdout(&local));
    assert!(!local_answers.is_empty(), "{}", stdout(&local));
    assert_eq!(answer_lines(&stdout(&out)), local_answers, "replica rendering diverged");
    drop(live);
    drop(server);

    // A replica that has never reached any primary has unknown lag: any
    // bounded query is refused with the typed staleness error (exit 1).
    let lonely = TempDb::new("replsrv-lonely");
    let lonely_guard = ChildGuard(
        std::process::Command::new(env!("CARGO_BIN_EXE_tprov"))
            .args([
                "replicate",
                "follow",
                "--db",
                lonely.arg(),
                "--from",
                "127.0.0.1:9",
                "--serve",
                "127.0.0.1:0",
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("follow spawns"),
    );
    let lonely_addr = wait_addr(&format!("{}.replica.addr", lonely.arg()));
    let out = tprov(&["query", "--replica", &lonely_addr, "--query", query, "--max-lag", "10"]);
    assert!(!out.status.success(), "stale replica must refuse: {}", stdout(&out));
    assert!(stderr(&out).contains("stale"), "{}", stderr(&out));
    drop(lonely_guard);
}

/// Retries a replica query while the freshly spawned follower finishes
/// catching up (a zero lag bound refuses until it has).
fn retry_query(args: &[&str]) -> Output {
    let mut out = tprov(args);
    for _ in 0..100 {
        if out.status.success() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        out = tprov(args);
    }
    out
}

/// Golden test for the journal sidecar and `tprov tail --format json`:
/// one `Stamped` JSON object per line with a locked envelope, and the
/// `QueryFinished` payload carries the locked counter/prediction fields.
#[test]
fn journal_tail_and_slow_lock_schemas() {
    let db = TempDb::new("journal");
    assert!(tprov(&["testbed", "--db", db.arg(), "--l", "3", "--d", "2"]).status.success());
    // Threshold 0: every query is slow, so the slow log gets an entry.
    let out = tprov_env(
        &[
            "query",
            "--db",
            db.arg(),
            "--query",
            "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})",
            "--algo",
            "indexproj",
        ],
        &[("TPROV_SLOW_QUERY_MS", "0")],
    );
    assert!(out.status.success(), "{}", stderr(&out));

    let out = tprov(&["tail", "--db", db.arg(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let mut kinds: Vec<String> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let e: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(sorted_keys(&e), ["event", "seq", "tid", "ts_ns"], "envelope of {line}");
        // Externally tagged enum: {"Kind": {fields…}}.
        let serde_json::Value::Object(event) = &e["event"] else { panic!("{line}") };
        let (kind, payload) = event.first().expect("tagged event");
        let kind = kind.clone();
        if kind == "QueryFinished" {
            assert_eq!(
                sorted_keys(payload),
                [
                    "bindings",
                    "drift",
                    "dur_ns",
                    "fingerprint",
                    "index_lookups",
                    "predicted_lookups",
                    "predicted_rows",
                    "records_read",
                    "rows_scanned",
                    "run",
                    "slow",
                    "steps",
                    "t1_ns",
                    "t2_ns",
                    "trace"
                ]
            );
            assert_eq!(payload.get("slow"), Some(&serde_json::Value::Bool(true)), "{line}");
        }
        kinds.push(kind);
    }
    for expected in ["QueryStarted", "PlanStep", "QueryFinished"] {
        assert!(kinds.iter().any(|k| k == expected), "missing {expected} in {kinds:?}");
    }

    // Text mode renders seq/kind and honours --last.
    let out = tprov(&["tail", "--db", db.arg(), "--last", "1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 1, "{text}");
    assert!(text.contains("QueryFinished"), "{text}");

    // The slow log got the threshold-0 entry and `slow` aggregates it.
    let out = tprov(&["slow", "--db", db.arg(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(sorted_keys(&report), ["aggregates", "drift_entries", "entries"]);
    let aggs = report["aggregates"].as_array().unwrap();
    assert!(!aggs.is_empty());
    assert_eq!(
        sorted_keys(&aggs[0]),
        ["count", "drift_count", "fingerprint", "max_us", "query", "slow_count", "total_us"]
    );
    assert_eq!(aggs[0]["query"].as_str(), Some("lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})"));
}

/// A deliberately skewed fan-out ([1 element] next to [40 elements])
/// violates the cost model's uniform-branching assumption: the observed
/// rows blow past the prediction, the finished query is drift-flagged
/// into the slow log, and `tprov slow` reports the misprediction — the
/// ISSUE's acceptance scenario.
#[test]
fn skewed_fanout_flags_cost_model_drift() {
    let db = TempDb::new("drift");
    let wf_path = format!("{}.skew.json", db.arg());
    {
        use prov_dataflow::{BaseType, DataflowBuilder, PortType};
        let mut b = DataflowBuilder::new("skew");
        b.input("xss", PortType::nested(BaseType::String, 2));
        b.processor_with_behavior("U", "string_upper")
            .in_port("x", PortType::atom(BaseType::String))
            .out_port("y", PortType::atom(BaseType::String));
        b.arc_from_input("xss", "U", "x").unwrap();
        b.output("yss", PortType::nested(BaseType::String, 2));
        b.arc_to_output("U", "y", "yss").unwrap();
        std::fs::write(&wf_path, serde_json::to_string(&b.build().unwrap()).unwrap()).unwrap();
    }
    let atoms: Vec<String> = (0..40).map(|i| format!(r#"{{"Atom":{{"Str":"b{i}"}}}}"#)).collect();
    let input = format!(
        r#"xss={{"List":[{{"List":[{{"Atom":{{"Str":"a"}}}}]}},{{"List":[{}]}}]}}"#,
        atoms.join(",")
    );
    let out = tprov(&["run", "--db", db.arg(), "--workflow", &wf_path, "--input", &input]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // Query down the skewed branch: the uniform model predicts ~sqrt(41)
    // rows per level, the scan actually walks 40.
    let out = tprov(&[
        "query",
        "--db",
        db.arg(),
        "--workflow",
        &wf_path,
        "--query",
        "lin(<skew:yss[1]>, {skew})",
        "--algo",
        "indexproj",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("40 binding(s)"), "{}", stdout(&out));

    let slow_log =
        std::fs::read_to_string(format!("{}.slow.jsonl", db.arg())).expect("slow log written");
    let entry: serde_json::Value = serde_json::from_str(slow_log.lines().next().unwrap()).unwrap();
    assert_eq!(entry["drift"], serde_json::Value::Bool(true), "{entry:?}");
    assert_eq!(entry["slow"], serde_json::Value::Bool(false), "drift alone logged {entry:?}");
    assert!(json_u64(&entry["predicted_rows"]) < 40, "{entry:?}");

    let out = tprov(&["slow", "--db", db.arg()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("1 drift-flagged"), "{text}");
    assert!(text.contains("lin(<skew:yss[1]>, {skew})"), "{text}");

    // The run phase journalled too: engine/store events in the sidecar.
    let journal =
        std::fs::read_to_string(format!("{}.journal.jsonl", db.arg())).expect("journal written");
    assert!(journal.contains("IngestBatch"), "{journal}");
    let _ = std::fs::remove_file(&wf_path);
}

#[test]
fn missing_required_flags_error_cleanly() {
    let out = tprov(&["lineage", "--db", "/nonexistent/nope.wal"]);
    assert!(!out.status.success());
    let out = tprov(&["testbed"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--db"));
}

/// Authors the builtin `upper` workflow next to `db` and returns the
/// JSON path (string_upper is in the builtin behaviour registry, so the
/// CLI can execute it anywhere).
fn author_upper_workflow(db: &TempDb) -> String {
    let mut b = prov_dataflow::DataflowBuilder::new("upper");
    b.input("xs", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.processor_with_behavior("U", "string_upper")
        .in_port("x", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String))
        .out_port("y", prov_dataflow::PortType::atom(prov_dataflow::BaseType::String));
    b.arc_from_input("xs", "U", "x").unwrap();
    b.output("ys", prov_dataflow::PortType::list(prov_dataflow::BaseType::String));
    b.arc_to_output("U", "y", "ys").unwrap();
    let df = b.build().unwrap();
    let wf_path = format!("{}.authored.json", db.arg());
    std::fs::write(&wf_path, serde_json::to_string(&df).unwrap()).unwrap();
    wf_path
}

/// End-to-end serve path through the CLI: start a `tprov serve` daemon,
/// stream a run into it with `run --server`, query it with `query
/// --server` (both algorithms answering identically to the same run
/// executed locally), hit the typed server-side deadline, then SIGTERM
/// the daemon and check the drained store and the metrics sidecar.
#[test]
fn serve_run_query_roundtrip_matches_local_and_drains_on_sigterm() {
    let local = TempDb::new("servelocal");
    let srv = TempDb::new("servedaemon");
    let wf_path = author_upper_workflow(&local);
    let input = r#"xs={"List":[{"Atom":{"Str":"ab"}},{"Atom":{"Str":"cd"}}]}"#;

    // The same workflow executed locally is the answer oracle.
    let out = tprov(&["run", "--db", local.arg(), "--workflow", &wf_path, "--input", input]);
    assert!(out.status.success(), "{}", stderr(&out));

    let mut daemon = ChildGuard(
        std::process::Command::new(env!("CARGO_BIN_EXE_tprov"))
            .args(["serve", srv.arg(), "--addr", "127.0.0.1:0"])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("serve spawns"),
    );
    let addr = wait_addr(&format!("{}.serve.addr", srv.arg()));

    // Stream the run to the daemon; every batch must come back acked.
    let out = tprov(&["run", "--server", &addr, "--workflow", &wf_path, "--input", input]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("durable frames acked"), "{}", stdout(&out));

    // Served answers are byte-identical to local ones for both
    // algorithms (the daemon plans INDEXPROJ against the spec the
    // ingest stream registered).
    for algo in ["ni", "indexproj"] {
        let query = "lin(<U:y[1]>)";
        let remote = tprov(&["query", "--server", &addr, "--query", query, "--algo", algo]);
        assert!(remote.status.success(), "{algo}: {}", stderr(&remote));
        let local_out = tprov(&[
            "query",
            "--db",
            local.arg(),
            "--workflow",
            &wf_path,
            "--query",
            query,
            "--algo",
            algo,
        ]);
        assert!(local_out.status.success(), "{algo}: {}", stderr(&local_out));
        // Local output leads with the parsed-query echo (and a plan
        // line for INDEXPROJ); everything after is the answers.
        let local_answers: String = stdout(&local_out)
            .lines()
            .filter(|l| !l.starts_with("lin(") && !l.starts_with("plan:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stdout(&remote), local_answers, "{algo} answers must match local");
        assert!(stdout(&remote).contains("binding"), "{algo}: {}", stdout(&remote));
    }

    // An already-expired deadline gets the typed server-side timeout.
    let out =
        tprov(&["query", "--server", &addr, "--query", "lin(<U:y[1]>)", "--deadline-ms", "0"]);
    assert!(!out.status.success(), "expired deadline must fail");
    assert!(stderr(&out).contains("timeout"), "{}", stderr(&out));

    // SIGTERM: the daemon drains, fsyncs, snapshots, and exits 0.
    let pid = daemon.0.id().to_string();
    assert!(std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs")
        .success());
    let mut code = None;
    for _ in 0..200 {
        if let Ok(Some(status)) = daemon.0.try_wait() {
            code = status.code();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert_eq!(code, Some(0), "daemon must exit 0 on SIGTERM");

    // The drained store reopens clean with the streamed run finished.
    let out = tprov(&["runs", "--db", srv.arg()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("workflow=upper"), "{}", stdout(&out));
    assert!(stdout(&out).contains("finished"), "{}", stdout(&out));

    // The serve.* family landed in the sidecar and `metrics` folds it in.
    let out = tprov(&["metrics", "--db", srv.arg()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("serve.conns_accepted"), "{}", stdout(&out));

    let _ = std::fs::remove_file(&wf_path);
}
