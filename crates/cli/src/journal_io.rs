//! Sidecar persistence for the event journal and the slow-query log.
//!
//! Query/run commands drain the in-process journal ring on exit and
//! append the events to `<db>.journal.jsonl` (one [`Stamped`] JSON object
//! per line); finished queries that crossed the slow threshold
//! (`TPROV_SLOW_QUERY_MS`) or whose observed cost drifted from the cost
//! model's prediction additionally get one [`SlowRecord`] line in
//! `<db>.slow.jsonl`. `tprov tail` and `tprov slow` read these files
//! back, so the journal survives across processes without any daemon.

use std::collections::HashMap;
use std::io::Write as _;

use prov_obs::{Journal, JournalEvent, TraceId};

/// The journal sidecar next to database `db`.
pub fn journal_path(db: &str) -> String {
    format!("{db}.journal.jsonl")
}

/// The slow-query log next to database `db`.
pub fn slow_path(db: &str) -> String {
    format!("{db}.slow.jsonl")
}

/// One line of the slow-query log: a finished query that was slow and/or
/// drifted from the cost model. Field names are part of the CLI contract
/// (`tprov slow` and external scrapers parse them).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SlowRecord {
    /// Trace id of the query execution.
    pub trace: u64,
    /// Plan fingerprint — the aggregation key of `tprov slow`, matching
    /// `PlanCacheMiss` events.
    pub fingerprint: u64,
    /// Query source text (from the paired `QueryStarted` event).
    pub query: String,
    /// Run the execution covered.
    pub run: u64,
    /// End-to-end microseconds.
    pub dur_us: u64,
    /// Graph-traversal/assembly microseconds (the paper's t1).
    pub t1_us: u64,
    /// Trace-access microseconds (the paper's t2).
    pub t2_us: u64,
    /// Total index lookups observed.
    pub index_lookups: u64,
    /// Total rows observed (records materialised + rows range-scanned).
    pub rows: u64,
    /// The cost model's lookup prediction, when one was attached.
    pub predicted_lookups: Option<u64>,
    /// The cost model's row prediction, when one was attached.
    pub predicted_rows: Option<u64>,
    /// Duration crossed `TPROV_SLOW_QUERY_MS`.
    pub slow: bool,
    /// Observed cost violated the prediction beyond tolerance —
    /// cost-model drift.
    pub drift: bool,
}

/// Drains `journal` into the sidecar files next to `db`. Every event is
/// appended to the journal file; `QueryFinished` events flagged slow or
/// drifted also produce a [`SlowRecord`]. Returns `(events, slow_lines)`
/// appended. A disabled journal writes nothing.
pub fn persist(db: &str, journal: &Journal) -> Result<(usize, usize), String> {
    let events = journal.drain();
    if events.is_empty() {
        return Ok((0, 0));
    }
    // Query text lives only on QueryStarted; key it by trace id so the
    // matching QueryFinished can carry it into the slow log.
    let queries: HashMap<TraceId, &str> = events
        .iter()
        .filter_map(|e| match &e.event {
            JournalEvent::QueryStarted { trace, query } => Some((*trace, query.as_str())),
            _ => None,
        })
        .collect();

    let mut journal_lines = String::new();
    let mut slow_lines = String::new();
    let mut slow_count = 0usize;
    for e in &events {
        journal_lines.push_str(&serde_json::to_string(e).map_err(|err| err.to_string())?);
        journal_lines.push('\n');
        if let JournalEvent::QueryFinished {
            trace,
            run,
            fingerprint,
            t1_ns,
            t2_ns,
            dur_ns,
            index_lookups,
            records_read,
            rows_scanned,
            predicted_lookups,
            predicted_rows,
            drift,
            slow,
            ..
        } = &e.event
        {
            if *slow || *drift {
                let rec = SlowRecord {
                    trace: trace.0,
                    fingerprint: *fingerprint,
                    query: queries.get(trace).unwrap_or(&"").to_string(),
                    run: *run,
                    dur_us: dur_ns / 1_000,
                    t1_us: t1_ns / 1_000,
                    t2_us: t2_ns / 1_000,
                    index_lookups: *index_lookups,
                    rows: records_read + rows_scanned,
                    predicted_lookups: *predicted_lookups,
                    predicted_rows: *predicted_rows,
                    slow: *slow,
                    drift: *drift,
                };
                slow_lines.push_str(&serde_json::to_string(&rec).map_err(|err| err.to_string())?);
                slow_lines.push('\n');
                slow_count += 1;
            }
        }
    }

    append(&journal_path(db), &journal_lines)?;
    if slow_count > 0 {
        append(&slow_path(db), &slow_lines)?;
    }
    Ok((events.len(), slow_count))
}

fn append(path: &str, contents: &str) -> Result<(), String> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    f.write_all(contents.as_bytes()).map_err(|e| format!("cannot append to {path}: {e}"))
}
