//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line flags: `--name value` pairs (repeatable) and bare
/// `--name` boolean flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, Vec<String>>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the token list after the subcommand.
    pub fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let name =
                tok.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {tok:?}"))?;
            // A flag is boolean if it is last or followed by another flag.
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                args.values.entry(name.to_string()).or_default().push(tokens[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(name.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// The last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.values.get(name).map(|v| v.iter().map(String::as_str).collect()).unwrap_or_default()
    }

    /// A required flag value.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required --{name}"))
    }

    /// A parsed optional flag value.
    pub fn get_parsed<T: FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)
            .map(|raw| raw.parse::<T>().map_err(|e| format!("--{name} {raw:?}: {e}")))
            .transpose()
    }

    /// Whether a bare boolean flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_flags_and_repeats() {
        let a = Args::parse(&toks("--db t.wal --l 20 --all-runs --input a=1 --input b=2")).unwrap();
        assert_eq!(a.get("db"), Some("t.wal"));
        assert_eq!(a.get_parsed::<usize>("l").unwrap(), Some(20));
        assert!(a.has_flag("all-runs"));
        assert_eq!(a.get_all("input"), vec!["a=1", "b=2"]);
        assert_eq!(a.get("missing"), None);
        assert!(a.required("missing").is_err());
    }

    #[test]
    fn rejects_positional_tokens() {
        assert!(Args::parse(&toks("positional --x 1")).is_err());
    }

    #[test]
    fn bad_numbers_error_with_context() {
        let a = Args::parse(&toks("--l abc")).unwrap();
        let err = a.get_parsed::<usize>("l").unwrap_err();
        assert!(err.contains("--l"));
        assert!(err.contains("abc"));
    }
}
