//! `tprov` — run collection-oriented workflows with provenance capture and
//! query lineage from the command line.
//!
//! ```text
//! tprov testbed  --db t.wal --l 20 --d 10 [--runs 3]
//! tprov gk       --db t.wal [--lists 3] [--genes 2] [--seed 7] [--runs 1]
//! tprov pd       --db t.wal [--terms p53,tumor] [--pad 20]
//! tprov run      --db t.wal --workflow wf.json --input name=<json> …
//!                [--max-attempts N] [--fail-fast] [--json] [--resume RUN]
//! tprov runs     --db t.wal
//! tprov lineage  --db t.wal --workflow wf.json --target P:Y
//!                [--index 1,2] [--focus A,B] [--run 0 | --all-runs]
//!                [--algo indexproj|ni]
//! tprov impact   --db t.wal --target wf:in [--index 0] [--focus wf] [--run 0]
//! tprov explain  ['lin(<P:Y[1]>, {A})'] --db t.wal [--run 0] [--check]
//!                [--without-index xform_in] [--tolerance 10] [--format json]
//! tprov lint     --workflow wf.json [--format json] [--iteration-threshold 3]
//! tprov dot      --workflow wf.json [--lint]
//! tprov tail     --db t.wal [--last 20] [--format json] [--follow]
//! tprov slow     --db t.wal [--format json]
//! tprov wal verify t.wal
//! tprov replicate serve  --db t.wal [--listen 127.0.0.1:7070]
//! tprov replicate follow --db replica.wal --from HOST:PORT [--serve ADDR] [--once]
//! tprov query    --replica HOST:PORT --query 'lin(...)' [--max-lag N]
//! tprov serve    t.wal [--addr 127.0.0.1:7071] [--max-conns N] [--for-ms N]
//! tprov run      --server HOST:PORT --workflow wf.json --input name=<json> …
//! tprov query    --server HOST:PORT --query 'lin(...)' [--deadline-ms N]
//! ```
//!
//! Workflows executed through `tprov` have their specification saved next
//! to the database (`<db>.<workflow>.json`), so later `lineage` calls can
//! use INDEXPROJ against the right graph. `run` executes any workflow
//! JSON whose behaviours are all in the builtin registry; it exits 0 when
//! the run completed and 3 when it finished with error tokens (partial
//! failure), so scripts can tell the two apart from plain usage errors.
//! `run --resume RUN` re-executes only the invocations a crashed run is
//! missing, keeping the original run id.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;
use std::sync::Arc;

use prov_core::{ImpactQuery, IndexProj, LineageQuery, NaiveImpact, NaiveLineage, PlanCache};
use prov_dataflow::{to_dot, to_dot_with_diagnostics, AnalyzeConfig, Dataflow};
use prov_engine::{BehaviorRegistry, Engine, FailedInvocation, RetryPolicy};
use prov_model::{Index, PortRef, ProcessorName, RunId, Value};
use prov_obs::{Journal, Obs, QueryCtx, Registry};
use prov_store::TraceStore;
use prov_workgen::{bio, testbed};

mod args;
mod journal_io;
mod json;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tprov: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        print_usage();
        return Ok(ExitCode::SUCCESS);
    };
    // `profile` and `explain` accept their query as the first positional
    // token (`tprov profile 'lin(...)' --db t.wal`); normalise before
    // parsing.
    let mut rest: Vec<String> = rest.to_vec();
    if cmd == "profile" || cmd == "explain" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                rest.insert(0, "--query".to_string());
            }
        }
    }
    // `wal` and `replicate` carry a verb as their first token
    // (`tprov wal verify t.wal`); dispatch before flag parsing.
    if cmd == "wal" || cmd == "replicate" {
        return run_verbed(cmd, &rest);
    }
    // `serve <db>` takes the database as a positional token.
    if cmd == "serve" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                rest.insert(0, "--db".to_string());
            }
        }
    }
    let args = Args::parse(&rest)?;
    // Only `run` distinguishes exit codes beyond success/failure (0
    // completed, 3 partial failure); everything else maps Ok to 0.
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "testbed" => done(cmd_testbed(&args)),
        "gk" => done(cmd_gk(&args)),
        "pd" => done(cmd_pd(&args)),
        "run" => cmd_run(&args),
        "serve" => cmd_serve(&args),
        "runs" => done(cmd_runs(&args)),
        "lineage" => done(cmd_lineage(&args)),
        "impact" => done(cmd_impact(&args)),
        "query" => done(cmd_query(&args)),
        "audit" => done(cmd_audit(&args)),
        "trace-dot" => done(cmd_trace_dot(&args)),
        "diff" => done(cmd_diff(&args)),
        "find-value" => done(cmd_find_value(&args)),
        "metrics" => done(cmd_metrics(&args)),
        "tail" => done(cmd_tail(&args)),
        "slow" => done(cmd_slow(&args)),
        "profile" => done(cmd_profile(&args)),
        "explain" => done(cmd_explain(&args)),
        "lint" => done(cmd_lint(&args)),
        "dot" => done(cmd_dot(&args)),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try `tprov help`")),
    }
}

/// Dispatches the two-level commands: `wal verify`, `replicate serve`,
/// `replicate follow`.
fn run_verbed(cmd: &str, rest: &[String]) -> Result<ExitCode, String> {
    let Some((verb, vrest)) = rest.split_first() else {
        return Err(format!("usage: tprov {cmd} <verb> ...; try `tprov help`"));
    };
    let mut vrest: Vec<String> = vrest.to_vec();
    // `wal verify <db>` takes the database as a positional token.
    if cmd == "wal" && verb == "verify" {
        if let Some(first) = vrest.first() {
            if !first.starts_with("--") {
                vrest.insert(0, "--db".to_string());
            }
        }
    }
    let args = Args::parse(&vrest)?;
    match (cmd, verb.as_str()) {
        ("wal", "verify") => cmd_wal_verify(&args),
        ("replicate", "serve") => cmd_repl_serve(&args),
        ("replicate", "follow") => cmd_repl_follow(&args),
        _ => Err(format!("unknown command `{cmd} {verb}`; try `tprov help`")),
    }
}

/// `tprov wal verify <db>`: offline CRC + frame sweep over the WAL and
/// every snapshot file beside it. Exit 0 when the store is undamaged
/// (a torn tail counts as undamaged — recovery truncates it), 1 when any
/// frame or snapshot is corrupt.
fn cmd_wal_verify(args: &Args) -> Result<ExitCode, String> {
    let db = args.required("db")?;
    let report =
        prov_repl::verify_store(std::path::Path::new(db)).map_err(|e| format!("{db}: {e}"))?;
    let tail = match report.tail {
        prov_store::TailState::Clean => "clean".to_string(),
        prov_store::TailState::TornTail { offset } => format!("torn tail at byte {offset}"),
        prov_store::TailState::CorruptFrame { offset } => {
            format!("CORRUPT frame at byte {offset}")
        }
    };
    println!(
        "{db}: {} frames / {} bytes verified, tail {tail}",
        report.wal_frames, report.wal_bytes
    );
    if report.generation > 0 {
        let backed = if report.marker_backed == Some(true) { "valid" } else { "MISSING/INVALID" };
        println!(
            "  leads with snapshot marker generation {} ({backed} snapshot)",
            report.generation
        );
    }
    for s in &report.snapshots {
        let verdict = if s.valid { "valid" } else { "INVALID" };
        println!("  snapshot {} (generation {}): {verdict}", s.path.display(), s.generation);
    }
    if report.healthy() {
        println!("ok");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("CORRUPTION DETECTED");
        Ok(ExitCode::FAILURE)
    }
}

/// `tprov replicate serve --db F [--listen ADDR] [--for-ms N]`: stream
/// this database's durable WAL to followers. The bound address is written
/// to `<db>.repl.addr` so scripts can use `--listen 127.0.0.1:0`.
fn cmd_repl_serve(args: &Args) -> Result<ExitCode, String> {
    let db = args.required("db")?;
    let listen = args.get("listen").unwrap_or("127.0.0.1:0");
    let store = Arc::new(TraceStore::open(db).map_err(|e| format!("cannot open {db}: {e}"))?);
    let journal = Journal::from_env();
    store.attach_journal(&journal);
    let mut server = prov_repl::ReplServer::spawn(
        Arc::clone(&store),
        listen,
        journal.clone(),
        prov_repl::PrimaryConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let addr_file = format!("{db}.repl.addr");
    std::fs::write(&addr_file, server.addr().to_string())
        .map_err(|e| format!("{addr_file}: {e}"))?;
    println!("serving WAL of {db} on {} (address in {addr_file})", server.addr());
    let ms: u64 = args.get_parsed("for-ms")?.unwrap_or(u64::MAX);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    server.shutdown();
    let _ = std::fs::remove_file(&addr_file);
    journal_io::persist(db, &journal)?;
    Ok(ExitCode::SUCCESS)
}

/// `tprov replicate follow --db LOCAL --from ADDR [--serve ADDR]
/// [--once] [--timeout-ms N]`: replay a primary's WAL into a local
/// replica, optionally serving read-only queries. With `--once`, exits 0
/// as soon as the replica is caught up (1 on timeout) — the scriptable
/// "seed a replica" form.
fn cmd_repl_follow(args: &Args) -> Result<ExitCode, String> {
    let db = args.required("db")?;
    let from = args.required("from")?;
    let journal = Journal::from_env();
    let follower = prov_repl::Follower::open(db, journal.clone()).map_err(|e| e.to_string())?;
    let handle = follower.start(from, prov_repl::FollowerConfig::default());
    let qserver = match args.get("serve") {
        Some(listen) => {
            let s = follower.serve_queries(listen).map_err(|e| e.to_string())?;
            let addr_file = format!("{db}.replica.addr");
            std::fs::write(&addr_file, s.addr().to_string())
                .map_err(|e| format!("{addr_file}: {e}"))?;
            println!("replica query endpoint on {} (address in {addr_file})", s.addr());
            Some((s, addr_file))
        }
        None => None,
    };
    let caught_up = if args.has_flag("once") {
        let timeout: u64 = args.get_parsed("timeout-ms")?.unwrap_or(60_000);
        follower.wait_caught_up(std::time::Duration::from_millis(timeout))
    } else {
        let ms: u64 = args.get_parsed("for-ms")?.unwrap_or(u64::MAX);
        std::thread::sleep(std::time::Duration::from_millis(ms));
        true
    };
    follower.stop();
    let _ = handle.join();
    if let Some((server, addr_file)) = qserver {
        drop(server);
        let _ = std::fs::remove_file(&addr_file);
    }
    let s = follower.status();
    println!(
        "caught_up={caught_up} generation={} frames={} lag_frames={} bootstraps={} resyncs={}",
        s.generation, s.frames, s.lag_frames, s.bootstraps, s.resyncs
    );
    journal_io::persist(db, &journal)?;
    Ok(if caught_up { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Routes `tprov query --replica ADDR` to a replica's query endpoint.
/// `--max-lag N` bounds acceptable staleness in frames; a replica beyond
/// the bound refuses with a typed error (nonzero exit).
fn query_via_replica(args: &Args, addr: &str) -> Result<(), String> {
    let req = prov_repl::QueryRequest {
        query: args.required("query")?.to_string(),
        run: args.get_parsed("run")?.unwrap_or(0),
        all_runs: args.has_flag("all-runs"),
        algo: args.get("algo").unwrap_or("ni").to_string(),
        wf: args.get("wf").map(str::to_string),
        max_lag_frames: args.get_parsed("max-lag")?,
    };
    match prov_repl::query_replica(addr, &req) {
        Ok(resp) => {
            for ans in &resp.answers {
                print!("{ans}");
            }
            println!(
                "replica: generation {} offset {} lag {} frames / {} bytes",
                resp.generation, resp.offset, resp.lag_frames, resp.lag_bytes
            );
            Ok(())
        }
        Err(e @ prov_repl::ReplError::ReplicaStale { .. }) => Err(e.to_string()),
        Err(e) => Err(format!("replica {addr}: {e}")),
    }
}

/// `tprov serve <db> [--addr ADDR] [--max-conns N] [--queue-depth N]
/// [--deadline-ms N] [--idle-ms N] [--drain-ms N] [--for-ms N]`: run the
/// provenance daemon — concurrent ingest streams and lineage queries over
/// one shared store. The bound address is written to `<db>.serve.addr`
/// so scripts can use `--addr 127.0.0.1:0`; on SIGTERM/ctrl-c (or after
/// `--for-ms`) the daemon drains, fsyncs, snapshots, and exits 0,
/// leaving its `serve.*` counters in a `<db>.serve.json` sidecar that
/// `tprov metrics` folds back in.
fn cmd_serve(args: &Args) -> Result<ExitCode, String> {
    let db = args.required("db")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let store = prov_store::SharedStore::open(db).map_err(|e| format!("cannot open {db}: {e}"))?;
    let journal = Journal::from_env();
    store.attach_journal(&journal);
    // Metrics on, profiler off: a long-running daemon accumulating
    // unbounded spans would leak; counters and gauges are fixed-size.
    let obs = Obs {
        metrics: Registry::new(),
        profiler: prov_obs::Profiler::disabled(),
        journal: journal.clone(),
    };
    let registry = obs.metrics.clone();
    let mut cfg = prov_serve::ServeConfig::default();
    if let Some(n) = args.get_parsed("max-conns")? {
        cfg.max_connections = n;
    }
    if let Some(n) = args.get_parsed("queue-depth")? {
        cfg.queue_depth = n;
    }
    if let Some(ms) = args.get_parsed("deadline-ms")? {
        cfg.default_deadline_ms = Some(ms);
    }
    if let Some(ms) = args.get_parsed("idle-ms")? {
        cfg.idle_timeout_ms = ms;
    }
    if let Some(ms) = args.get_parsed("drain-ms")? {
        cfg.drain_deadline_ms = ms;
    }
    let server =
        prov_serve::ProvServer::start(store, obs, cfg, addr).map_err(|e| format!("{addr}: {e}"))?;
    let addr_file = format!("{db}.serve.addr");
    std::fs::write(&addr_file, server.local_addr().to_string())
        .map_err(|e| format!("{addr_file}: {e}"))?;
    println!("serving {db} on {} (address in {addr_file})", server.local_addr());
    prov_serve::signal::install();
    let ms: u64 = args.get_parsed("for-ms")?.unwrap_or(u64::MAX);
    let budget = std::time::Duration::from_millis(ms);
    let started = std::time::Instant::now();
    // A remote SHUTDOWN request flips the server into draining on its
    // own; the wait loop notices and falls through to the same exit path
    // as a signal.
    while !prov_serve::signal::triggered() && !server.draining() && started.elapsed() < budget {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let report = server.shutdown();
    // Persist the serve.* metric family so `tprov metrics` on this
    // database reports the daemon's last run (atomic tmp+rename, like the
    // replication sidecar).
    let snap = registry.snapshot();
    let serve_metrics: std::collections::BTreeMap<&String, &u64> = snap
        .counters
        .iter()
        .chain(snap.gauges.iter())
        .filter(|(k, _)| k.starts_with("serve."))
        .collect();
    let sidecar = format!("{db}.serve.json");
    let tmp = format!("{sidecar}.tmp");
    std::fs::write(&tmp, json::render(&serve_metrics)?).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, &sidecar).map_err(|e| format!("{sidecar}: {e}"))?;
    let _ = std::fs::remove_file(&addr_file);
    journal_io::persist(db, &journal)?;
    println!(
        "drained: forced={} active_at_exit={} (metrics in {sidecar})",
        report.forced, report.active_at_exit
    );
    Ok(ExitCode::SUCCESS)
}

/// Routes `tprov query --server ADDR` to a provenance daemon. The daemon
/// answers with the same rendering as a local query; `--deadline-ms N`
/// bounds execution server-side — a query past it aborts between plan
/// steps with a typed timeout (nonzero exit).
fn query_via_server(args: &Args, addr: &str) -> Result<(), String> {
    let req = prov_serve::protocol::ServeQuery {
        query: args.required("query")?.to_string(),
        run: args.get_parsed("run")?.unwrap_or(0),
        all_runs: args.has_flag("all-runs"),
        algo: args.get("algo").unwrap_or("ni").to_string(),
        wf: args.get("wf").map(str::to_string),
        deadline_ms: args.get_parsed("deadline-ms")?,
    };
    let mut client =
        prov_serve::ServeClient::connect(addr).map_err(|e| format!("server {addr}: {e}"))?;
    for ans in client.query(&req).map_err(|e| format!("server {addr}: {e}"))? {
        print!("{ans}");
    }
    Ok(())
}

fn print_usage() {
    println!(
        "tprov — workflow provenance capture and lineage querying\n\n\
         commands:\n\
         \x20 testbed  --db FILE --l N --d N [--runs N]   run the synthetic testbed\n\
         \x20 gk       --db FILE [--lists N] [--genes N] [--seed N] [--runs N]\n\
         \x20 pd       --db FILE [--terms a,b] [--pad N]\n\
         \x20 run      --db FILE --workflow WF.json --input name=<json> ...\n\
         \x20          [--max-attempts N] [--fail-fast] [--json] [--resume RUN]\n\
         \x20          exit 0 = completed, 3 = partial failure (error tokens)\n\
         \x20          --resume re-executes only what crashed run RUN is missing\n\
         \x20 runs     --db FILE                           list stored runs\n\
         \x20 lineage  --db FILE --workflow WF.json --target P:Y [--index 1,2]\n\
         \x20          [--focus A,B] [--run N | --all-runs] [--algo indexproj|ni]\n\
         \x20 impact   --db FILE --target P:X [--index 0] [--focus wf] [--run N]\n\
         \x20 query    --db FILE --query 'lin(<P:Y[1,2]>, {{A}})' [--algo ni|indexproj]\n\
         \x20          [--workflow WF.json] [--run N | --all-runs]\n\
         \x20          [--replica HOST:PORT [--max-lag N]]  query a read replica;\n\
         \x20          a replica beyond the staleness bound refuses (exit 1)\n\
         \x20 audit    --db FILE --workflow WF.json [--run N | --all-runs]\n\
         \x20 diff     --db FILE --a N --b N --target P:Y [--index ..] [--focus ..]\n\
         \x20 find-value --db FILE --value <json> [--run N] [--lineage] [--focus ..]\n\
         \x20 metrics  --db FILE [--format json]           store/WAL metric snapshot\n\
         \x20 tail     --db FILE [--last N] [--format json] [--follow]\n\
         \x20          dump (or follow) the last N journal events\n\
         \x20 slow     --db FILE [--last N] [--format json]\n\
         \x20          aggregate the slow-query log: top plan fingerprints by\n\
         \x20          total time, with the cost-model misprediction rate\n\
         \x20 profile  QUERY --db FILE [--algo ni|indexproj|both] [--run N | --all-runs]\n\
         \x20          [--workflow WF.json] [--chrome-trace OUT.json]\n\
         \x20          per-stage timings with the paper's t1/t2 split\n\
         \x20 explain  [QUERY] --db FILE [--workflow WF.json] [--run N]\n\
         \x20          [--without-index NAME] [--check] [--tolerance F] [--format json]\n\
         \x20          static plan verification + cost prediction; without QUERY,\n\
         \x20          explains an unfocused coarse query per workflow output;\n\
         \x20          exit 1 on E1xx findings or a failed --check\n\
         \x20 lint     --workflow WF.json [--format json] [--iteration-threshold N]\n\
         \x20          static diagnostics (exit 1 on error-level findings)\n\
         \x20 dot      --workflow WF.json [--lint]         print spec as Graphviz\n\
         \x20 trace-dot --db FILE [--run N] [--json]       print a run's provenance graph\n\
         \x20 wal verify DB                                offline CRC + frame sweep of\n\
         \x20          the WAL and snapshots (exit 1 on corruption)\n\
         \x20 replicate serve  --db FILE [--listen ADDR] [--for-ms N]\n\
         \x20          stream the WAL to followers (address in <db>.repl.addr)\n\
         \x20 replicate follow --db LOCAL --from ADDR [--serve ADDR] [--once]\n\
         \x20          [--timeout-ms N]  replay a primary into a local replica;\n\
         \x20          --serve answers read-only queries, --once exits when caught up\n\
         \x20 serve    DB [--addr ADDR] [--max-conns N] [--queue-depth N]\n\
         \x20          [--deadline-ms N] [--idle-ms N] [--drain-ms N] [--for-ms N]\n\
         \x20          provenance daemon: concurrent ingest + queries on one store\n\
         \x20          (address in <db>.serve.addr; SIGTERM drains and exits 0);\n\
         \x20          `run --server ADDR` streams a run's trace to it, and\n\
         \x20          `query --server ADDR [--deadline-ms N]` queries it\n\n\
         queries use the db-registered workflow spec when --workflow is omitted"
    );
}

fn open_db(args: &Args) -> Result<TraceStore, String> {
    let path = args.required("db")?;
    TraceStore::open(path).map_err(|e| format!("cannot open {path}: {e}"))
}

/// Persists the workflow spec both inside the database (self-contained
/// lineage queries) and as a sidecar JSON file (for editing/`dot`).
fn save_workflow(args: &Args, store: &TraceStore, df: &Dataflow) -> Result<(), String> {
    let json = serde_json::to_string_pretty(df).map_err(|e| e.to_string())?;
    store.register_workflow(&df.name, json.clone());
    let db = args.required("db")?;
    let path = format!("{db}.{}.json", df.name);
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    println!("workflow spec saved to {path} (and registered in the db)");
    Ok(())
}

fn parse_workflow_json(origin: &str, json: &str) -> Result<Dataflow, String> {
    let mut df: Dataflow = serde_json::from_str(json).map_err(|e| format!("{origin}: {e}"))?;
    df.reindex();
    prov_dataflow::validate(&df).map_err(|e| format!("{origin}: {e}"))?;
    Ok(df)
}

/// Loads a workflow spec from `--workflow FILE`.
fn load_workflow(args: &Args) -> Result<Dataflow, String> {
    let path = args.required("workflow")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_workflow_json(path, &json)
}

/// Resolves the workflow spec for a query: `--workflow FILE` wins; else
/// `--wf NAME` is fetched from the database registry; else, if the
/// database registers exactly one workflow, that one is used.
fn resolve_workflow(args: &Args, store: &TraceStore) -> Result<Dataflow, String> {
    if args.get("workflow").is_some() {
        return load_workflow(args);
    }
    let name = match args.get("wf") {
        Some(n) => prov_model::ProcessorName::from(n),
        None => {
            let names = store.workflow_names();
            match names.as_slice() {
                [only] => only.clone(),
                [] => return Err("no workflow registered in the db; pass --workflow FILE".into()),
                many => {
                    return Err(format!(
                        "db registers {} workflows ({}); pick one with --wf NAME",
                        many.len(),
                        many.iter().map(|n| n.as_str()).collect::<Vec<_>>().join(", ")
                    ))
                }
            }
        }
    };
    let json = store
        .workflow_json(&name)
        .ok_or_else(|| format!("workflow {name:?} is not registered in the db"))?;
    parse_workflow_json(name.as_str(), &json)
}

fn cmd_testbed(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let l: usize = args.get_parsed("l")?.unwrap_or(10);
    let d: usize = args.get_parsed("d")?.unwrap_or(10);
    let runs: usize = args.get_parsed("runs")?.unwrap_or(1);
    let df = testbed::generate(l);
    for _ in 0..runs {
        let out = testbed::run(&df, d, &store);
        println!("{}: {} records (l={l}, d={d})", out.run_id, store.trace_record_count(out.run_id));
    }
    save_workflow(args, &store, &df)
}

fn cmd_gk(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let lists: usize = args.get_parsed("lists")?.unwrap_or(2);
    let genes: usize = args.get_parsed("genes")?.unwrap_or(2);
    let seed: u64 = args.get_parsed("seed")?.unwrap_or(7);
    let runs: usize = args.get_parsed("runs")?.unwrap_or(1);
    let df = bio::genes2kegg_workflow();
    let db = Arc::new(bio::KeggDb::small(seed));
    for r in 0..runs {
        let input = bio::sample_gene_lists(lists, genes, seed + r as u64);
        let out = bio::run_genes2kegg(&df, Arc::clone(&db), input, &store);
        println!("{}: genes2Kegg run recorded", out.run_id);
        for (port, value) in &out.outputs {
            println!("  {port} = {value}");
        }
    }
    save_workflow(args, &store, &df)
}

fn cmd_pd(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let terms_raw = args.get("terms").unwrap_or("p53,tumor");
    let terms: Vec<&str> = terms_raw.split(',').filter(|t| !t.is_empty()).collect();
    let pad: usize = args.get_parsed("pad")?.unwrap_or(20);
    let df = bio::protein_discovery_workflow(pad);
    let corpus = Arc::new(bio::PubMedCorpus::new(11, 60));
    let out = bio::run_protein_discovery(&df, corpus, terms, &store);
    println!("{}: protein_discovery run recorded", out.run_id);
    for (port, value) in &out.outputs {
        println!("  {port} = {value}");
    }
    save_workflow(args, &store, &df)
}

/// What `tprov run --json` prints: enough to script against partial runs
/// without parsing human output. The key set is part of the CLI contract
/// (locked by a golden test); `resumed_from` is `null` for fresh runs.
#[derive(serde::Serialize)]
struct RunReport {
    run: u64,
    workflow: String,
    status: String,
    outputs: std::collections::BTreeMap<String, Value>,
    failed_xforms: Vec<FailedInvocation>,
    resumed_from: Option<u64>,
}

fn parse_inputs(args: &Args) -> Result<Vec<(String, Value)>, String> {
    let mut inputs: Vec<(String, Value)> = Vec::new();
    for spec in args.get_all("input") {
        let (name, json) = spec
            .split_once('=')
            .ok_or_else(|| format!("--input expects name=<json>, got {spec:?}"))?;
        let value: Value = serde_json::from_str(json)
            .map_err(|e| format!("input {name}: invalid value JSON: {e}"))?;
        inputs.push((name.to_string(), value));
    }
    Ok(inputs)
}

/// `tprov run --server ADDR`: execute the workflow locally but stream
/// its trace to a provenance daemon over the ingest protocol instead of
/// writing a local store — every acked batch is durable server-side
/// before this command exits.
fn run_via_server(args: &Args, addr: &str) -> Result<ExitCode, String> {
    if args.get("resume").is_some() {
        return Err("--resume needs the local store; it cannot combine with --server".into());
    }
    let df = load_workflow(args)?;
    let inputs = parse_inputs(args)?;
    let wf_json = serde_json::to_string(&df).map_err(|e| e.to_string())?;
    let sink = prov_serve::RemoteSink::connect(addr, Some(wf_json))
        .map_err(|e| format!("server {addr}: {e}"))?;
    let registry = BehaviorRegistry::new().with_builtins();
    let mut engine = Engine::new(registry);
    if let Some(attempts) = args.get_parsed::<u32>("max-attempts")? {
        if attempts == 0 {
            return Err("--max-attempts must be at least 1".into());
        }
        engine = engine.with_retry(RetryPolicy::attempts(attempts));
    }
    if args.has_flag("fail-fast") {
        engine = engine.fail_fast();
    }
    let out = engine.execute(&df, inputs, &sink).map_err(|e| e.to_string())?;
    // The engine swallows sink troubles (a trace sink must not fail a
    // run); surface a latched ingest error as this command's failure so
    // scripts never mistake an unacked trace for a durable one.
    if let Some(e) = sink.error() {
        return Err(format!("server {addr}: ingest failed: {e}"));
    }
    let code = report_run(args, &df, &out, None)?;
    if !args.has_flag("json") {
        println!("  {} durable frames acked by {addr}", sink.durable_frames());
    }
    Ok(code)
}

/// Prints the run report (text or `--json`) and maps the outcome to the
/// exit code contract: 0 completed, 3 partial failure.
fn report_run(
    args: &Args,
    df: &Dataflow,
    out: &prov_engine::RunOutcome,
    resumed_from: Option<u64>,
) -> Result<ExitCode, String> {
    let failed = out.failed_xforms();
    let status = if failed.is_empty() { "completed" } else { "partial-failure" };
    if args.has_flag("json") {
        let report = RunReport {
            run: out.run_id.0,
            workflow: df.name.to_string(),
            status: status.to_string(),
            outputs: out.outputs.iter().map(|(p, v)| (p.to_string(), v.clone())).collect(),
            failed_xforms: failed.to_vec(),
            resumed_from,
        };
        println!("{}", json::render(&report)?);
    } else {
        let how = if resumed_from.is_some() { "resumed" } else { "recorded" };
        println!("{}: {} run {how} ({status})", out.run_id, df.name);
        for (port, value) in &out.outputs {
            println!("  {port} = {value}");
        }
        for f in failed {
            eprintln!(
                "  FAILED {}{} after {} attempt(s): {}",
                f.processor, f.index, f.attempts, f.message
            );
        }
    }
    // Exit 0 on a completed run, 3 on a partial failure — distinguishable
    // from usage/IO errors (1) in scripts.
    Ok(if failed.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(3) })
}

fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    if let Some(addr) = args.get("server") {
        return run_via_server(args, addr);
    }
    let store = open_db(args)?;
    let df = load_workflow(args)?;
    let inputs = parse_inputs(args)?;
    // The run path journals too: ingest batches and retries from the
    // engine, WAL syncs and snapshot writes from the store — all drained
    // into `<db>.journal.jsonl` on exit for `tprov tail`.
    let journal = Journal::from_env();
    store.attach_journal(&journal);
    let registry = BehaviorRegistry::new().with_builtins();
    let mut engine = Engine::new(registry).with_obs(Obs::disabled().with_journal(journal.clone()));
    if let Some(attempts) = args.get_parsed::<u32>("max-attempts")? {
        if attempts == 0 {
            return Err("--max-attempts must be at least 1".into());
        }
        engine = engine.with_retry(RetryPolicy::attempts(attempts));
    }
    if args.has_flag("fail-fast") {
        engine = engine.fail_fast();
    }
    // `--resume RUN` picks the crashed run back up: settled invocations
    // are reloaded from the durable trace, only the missing ones execute,
    // and the original run id is kept.
    let resumed_from: Option<u64> = args.get_parsed("resume")?;
    let out = match resumed_from {
        Some(run) => engine.resume(&df, inputs, &store, RunId(run)).map_err(|e| e.to_string())?,
        None => engine.execute(&df, inputs, &store).map_err(|e| e.to_string())?,
    };
    let code = report_run(args, &df, &out, resumed_from)?;
    journal_io::persist(args.required("db")?, &journal)?;
    Ok(code)
}

fn cmd_runs(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    for info in store.runs() {
        println!(
            "{}  workflow={}  records={}  {}",
            info.id,
            info.workflow,
            info.xform_count + info.xfer_count,
            if info.finished { "finished" } else { "UNFINISHED" }
        );
    }
    println!("total: {} records", store.total_record_count());
    Ok(())
}

fn parse_port_ref(s: &str) -> Result<PortRef, String> {
    let (proc, port) =
        s.split_once(':').ok_or_else(|| format!("expected PROCESSOR:PORT, got {s:?}"))?;
    Ok(PortRef::new(proc, port))
}

fn parse_index(args: &Args) -> Result<Index, String> {
    match args.get("index") {
        None | Some("") => Ok(Index::empty()),
        Some(raw) => raw
            .split(',')
            .map(|c| c.trim().parse::<u32>().map_err(|e| format!("index {raw:?}: {e}")))
            .collect::<Result<Vec<u32>, _>>()
            .map(Index::from),
    }
}

fn parse_focus(args: &Args) -> Vec<ProcessorName> {
    args.get("focus")
        .map(|raw| raw.split(',').filter(|s| !s.is_empty()).map(ProcessorName::from).collect())
        .unwrap_or_default()
}

fn select_runs(args: &Args, store: &TraceStore) -> Result<Vec<RunId>, String> {
    if args.has_flag("all-runs") {
        return Ok(store.runs().iter().map(|i| i.id).collect());
    }
    let run: u64 = args.get_parsed("run")?.unwrap_or(0);
    Ok(vec![RunId(run)])
}

fn cmd_lineage(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let target = parse_port_ref(args.required("target")?)?;
    let index = parse_index(args)?;
    let focus = parse_focus(args);
    let query = LineageQuery::focused(target, index, focus);
    let runs = select_runs(args, &store)?;
    let algo = args.get("algo").unwrap_or("indexproj");

    println!("{query}");
    match algo {
        "ni" => {
            let ni = NaiveLineage::new();
            for ans in ni.run_multi(&store, &runs, &query).map_err(|e| e.to_string())? {
                print!("{ans}");
            }
        }
        "indexproj" => {
            let df = resolve_workflow(args, &store)?;
            let ip = IndexProj::new(&df);
            let plan = ip.plan(&query).map_err(|e| e.to_string())?;
            println!("plan: {} trace lookups", plan.steps.len());
            for ans in plan.execute_multi(&store, &runs).map_err(|e| e.to_string())? {
                print!("{ans}");
            }
        }
        other => return Err(format!("unknown --algo {other:?} (ni|indexproj)")),
    }
    Ok(())
}

fn cmd_impact(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let source = parse_port_ref(args.required("target")?)?;
    let index = parse_index(args)?;
    let focus = parse_focus(args);
    let query = ImpactQuery::focused(source, index, focus);
    let runs = select_runs(args, &store)?;
    println!("{query}");
    for ans in NaiveImpact::new().run_multi(&store, &runs, &query).map_err(|e| e.to_string())? {
        print!("{ans}");
    }
    Ok(())
}

/// Audits stored traces against the workflow specification (Prop. 1,
/// fragment lengths, dangling transfers).
fn cmd_audit(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let df = resolve_workflow(args, &store)?;
    let runs = select_runs(args, &store)?;
    let mut dirty = false;
    for run in runs {
        let report = prov_core::audit_run(&df, &store, run).map_err(|e| e.to_string())?;
        dirty |= !report.is_clean();
        print!("{report}");
    }
    if dirty {
        Err("audit found violations".into())
    } else {
        Ok(())
    }
}

/// Hashes an impact query into the same fingerprint space as
/// [`PlanCache::fingerprint`] uses for lineage queries.
fn impact_fingerprint(query: &ImpactQuery) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    query.hash(&mut h);
    h.finish()
}

/// Queries written in the paper's own notation, e.g.
/// `tprov query --db t.wal --query 'lin(<2TO1_FINAL:Y[1,2]>, {LISTGEN_1})'`.
///
/// Every execution runs under a [`QueryCtx`]: the store's WAL/snapshot
/// hooks and the query layer journal typed events (trace-id-stamped, so
/// per-query attribution survives `TPROV_QUERY_THREADS` fan-out), and on
/// exit the ring is drained into `<db>.journal.jsonl` /
/// `<db>.slow.jsonl` for `tprov tail` / `tprov slow`. With INDEXPROJ the
/// cost model's prediction is attached up front, so a finished query
/// whose observed lookups/rows violate the prediction is flagged as
/// cost-model drift in the slow log.
fn cmd_query(args: &Args) -> Result<(), String> {
    if let Some(addr) = args.get("replica") {
        return query_via_replica(args, addr);
    }
    if let Some(addr) = args.get("server") {
        return query_via_server(args, addr);
    }
    let store = open_db(args)?;
    let raw = args.required("query")?;
    let runs = select_runs(args, &store)?;
    let journal = Journal::from_env();
    store.attach_journal(&journal);
    let obs = Obs::disabled().with_journal(journal.clone());
    let tolerance: f64 = args.get_parsed("tolerance")?.unwrap_or(10.0);
    match prov_core::parse_query(raw).map_err(|e| e.to_string())? {
        prov_core::ParsedQuery::Lineage(query) => {
            println!("{query}");
            let ctx = QueryCtx::new(raw).with_fingerprint(PlanCache::fingerprint(&query));
            match args.get("algo").unwrap_or("ni") {
                "ni" => {
                    for ans in NaiveLineage::new()
                        .run_multi_ctx(&store, &runs, &query, &obs, &ctx)
                        .map_err(|e| e.to_string())?
                    {
                        print!("{ans}");
                    }
                }
                "indexproj" => {
                    let df = resolve_workflow(args, &store)?;
                    let ip = IndexProj::new(&df);
                    // Explain (rather than bare plan) so the cost model's
                    // prediction rides along and drift is detectable.
                    let ex = ip
                        .explain_with(
                            &query,
                            &store.index_catalog(),
                            |step, id| {
                                Some(store.port_cardinality(
                                    id,
                                    runs[0],
                                    &step.processor,
                                    &step.port,
                                ))
                            },
                            &Obs::disabled(),
                        )
                        .map_err(|e| e.to_string())?;
                    let ctx = ctx.with_prediction(
                        ex.cost.index_lookups,
                        ex.cost.rows_scanned,
                        ex.cost.grounded,
                        tolerance,
                    );
                    println!("plan: {} trace lookups", ex.plan.steps.len());
                    for ans in ex
                        .plan
                        .execute_multi_ctx(&store, &runs, &obs, &ctx)
                        .map_err(|e| e.to_string())?
                    {
                        print!("{ans}");
                    }
                }
                other => return Err(format!("unknown --algo {other:?} (ni|indexproj)")),
            }
        }
        prov_core::ParsedQuery::Impact(query) => {
            println!("{query}");
            let ctx = QueryCtx::new(raw).with_fingerprint(impact_fingerprint(&query));
            let imp = NaiveImpact::new();
            for &run in &runs {
                let ans =
                    imp.run_ctx(&store, run, &query, &obs, &ctx).map_err(|e| e.to_string())?;
                print!("{ans}");
            }
        }
    }
    journal_io::persist(args.required("db")?, &journal)?;
    Ok(())
}

/// Snapshots the store's metrics: size gauges (runs, rows, dictionary and
/// index cardinalities) reflect the database as opened; counters reflect
/// work done by *this* process, so right after `open` they show the WAL
/// recovery cost and nothing else.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let registry = Registry::new();
    store.register_metrics(&registry);
    // The query worker pool size in effect (TPROV_QUERY_THREADS else the
    // hardware default) — so operators can see what fan-out a deployment
    // actually runs with.
    registry.set_gauge("query.workers", prov_core::query_workers() as u64);
    // When this database is a replica, `tprov replicate follow` maintains
    // a `<db>.repl.json` sidecar (written atomically on every status
    // change); surface its lag as gauges so one `metrics` call covers
    // both the store and its replication health.
    let sidecar = prov_repl::status_path(std::path::Path::new(args.required("db")?));
    if let Ok(text) = std::fs::read_to_string(&sidecar) {
        let s: prov_repl::ReplStatus = serde_json::from_str(&text)
            .map_err(|e| format!("{}: bad replication sidecar: {e}", sidecar.display()))?;
        registry.set_gauge("repl.lag_frames", s.lag_frames);
        registry.set_gauge("repl.lag_bytes", s.lag_bytes);
        registry.set_gauge("repl.generation", s.generation);
        registry.set_gauge("repl.connected", u64::from(s.connected));
    }
    // When a daemon last served this database, `tprov serve` left its
    // `serve.*` counter family in a `<db>.serve.json` sidecar at
    // shutdown; fold it in so one `metrics` call covers the store, its
    // replication health, and its serve surface.
    let serve_sidecar = format!("{}.serve.json", args.required("db")?);
    if let Ok(text) = std::fs::read_to_string(&serve_sidecar) {
        let m: std::collections::BTreeMap<String, u64> = serde_json::from_str(&text)
            .map_err(|e| format!("{serve_sidecar}: bad serve sidecar: {e}"))?;
        for (k, v) in &m {
            registry.set_gauge(k, *v);
        }
    }
    let snapshot = registry.snapshot();
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", snapshot.render_text()),
        "json" => println!("{}", json::render(&snapshot)?),
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    }
    Ok(())
}

/// Renders one persisted journal line for `tprov tail`'s text mode.
fn render_journal_line(path: &str, line: &str) -> Result<String, String> {
    let e: prov_obs::Stamped =
        serde_json::from_str(line).map_err(|err| format!("{path}: bad journal line: {err}"))?;
    let mut out = format!("#{:<6} {:>10} tid={} {}", e.seq, fmt_ns(e.ts_ns), e.tid, e.event.kind());
    if let prov_obs::JournalEvent::QueryStarted { query, .. } = &e.event {
        out.push_str(&format!(" {query:?}"));
    }
    for (k, v) in e.event.numeric_args() {
        out.push_str(&format!(" {k}={v}"));
    }
    Ok(out)
}

/// Dumps — or, with `--follow`, keeps streaming — the tail of the
/// journal sidecar (`<db>.journal.jsonl`) that query/run commands append
/// on exit. `--format json` reprints the raw event lines (one JSON
/// object per line, schema locked by a golden test); text mode renders
/// `#seq timestamp tid kind k=v…`.
fn cmd_tail(args: &Args) -> Result<(), String> {
    let db = args.required("db")?;
    let path = journal_io::journal_path(db);
    let last: usize = args.get_parsed("last")?.unwrap_or(20);
    let json_format = match args.get("format").unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("no journal at {path} ({e}); run a query or a workflow first"))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for line in &lines[lines.len().saturating_sub(last)..] {
        if json_format {
            println!("{line}");
        } else {
            println!("{}", render_journal_line(&path, line)?);
        }
    }
    if !args.has_flag("follow") {
        return Ok(());
    }
    // Follow mode: poll the file for growth and render each newly
    // completed line. A trailing partial line (a writer mid-append) is
    // carried until its newline lands.
    use std::io::{Read as _, Seek as _};
    let mut offset = text.len() as u64;
    let mut carry = String::new();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(250));
        let Ok(meta) = std::fs::metadata(&path) else { continue };
        if meta.len() <= offset {
            continue;
        }
        let mut f = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
        f.seek(std::io::SeekFrom::Start(offset)).map_err(|e| format!("{path}: {e}"))?;
        let mut fresh = String::new();
        f.read_to_string(&mut fresh).map_err(|e| format!("{path}: {e}"))?;
        offset += fresh.len() as u64;
        carry.push_str(&fresh);
        while let Some(nl) = carry.find('\n') {
            let line: String = carry.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if json_format {
                println!("{line}");
            } else {
                println!("{}", render_journal_line(&path, line)?);
            }
        }
    }
}

/// One aggregated row of `tprov slow`: all slow-log entries sharing a
/// plan fingerprint. Field names are part of the CLI contract.
#[derive(serde::Serialize)]
struct SlowAgg {
    fingerprint: u64,
    query: String,
    count: u64,
    slow_count: u64,
    drift_count: u64,
    total_us: u64,
    max_us: u64,
}

/// What `tprov slow --format json` prints.
#[derive(serde::Serialize)]
struct SlowReport {
    entries: u64,
    drift_entries: u64,
    aggregates: Vec<SlowAgg>,
}

/// Aggregates the slow-query log (`<db>.slow.jsonl`): entries grouped by
/// plan fingerprint, ranked by total time, with per-group drift counts —
/// a drift-flagged group means the cost model's prediction was violated
/// beyond tolerance (cost-model drift), not merely a slow query.
fn cmd_slow(args: &Args) -> Result<(), String> {
    let db = args.required("db")?;
    let path = journal_io::slow_path(db);
    let json_format = match args.get("format").unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    };
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let mut records: Vec<journal_io::SlowRecord> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        records
            .push(serde_json::from_str(line).map_err(|e| format!("{path}: bad slow line: {e}"))?);
    }
    if let Some(last) = args.get_parsed::<usize>("last")? {
        let start = records.len().saturating_sub(last);
        records.drain(..start);
    }
    let mut groups: std::collections::HashMap<u64, SlowAgg> = std::collections::HashMap::new();
    let mut drift_entries = 0u64;
    for r in &records {
        drift_entries += u64::from(r.drift);
        let g = groups.entry(r.fingerprint).or_insert_with(|| SlowAgg {
            fingerprint: r.fingerprint,
            query: r.query.clone(),
            count: 0,
            slow_count: 0,
            drift_count: 0,
            total_us: 0,
            max_us: 0,
        });
        g.count += 1;
        g.slow_count += u64::from(r.slow);
        g.drift_count += u64::from(r.drift);
        g.total_us += r.dur_us;
        g.max_us = g.max_us.max(r.dur_us);
    }
    let mut aggregates: Vec<SlowAgg> = groups.into_values().collect();
    aggregates.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.fingerprint.cmp(&b.fingerprint)));

    if json_format {
        let report = SlowReport { entries: records.len() as u64, drift_entries, aggregates };
        println!("{}", json::render(&report)?);
        return Ok(());
    }
    if records.is_empty() {
        println!("slow-query log {path}: no entries");
        return Ok(());
    }
    let rate = 100.0 * drift_entries as f64 / records.len() as f64;
    println!(
        "slow-query log {path}: {} entr{}, {} drift-flagged (misprediction rate {rate:.0}%)",
        records.len(),
        if records.len() == 1 { "y" } else { "ies" },
        drift_entries,
    );
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>10} {:>10}  query",
        "fingerprint", "count", "slow", "drift", "total", "max"
    );
    for a in &aggregates {
        println!(
            "{:016x} {:>5} {:>5} {:>5} {:>10} {:>10}  {}",
            a.fingerprint,
            a.count,
            a.slow_count,
            a.drift_count,
            fmt_ns(a.total_us * 1_000),
            fmt_ns(a.max_us * 1_000),
            a.query,
        );
    }
    Ok(())
}

/// Formats nanoseconds for the profile table.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Profiles a lineage query: runs it under an enabled [`Obs`], prints a
/// per-stage timing table and the paper's t1 (graph traversal) vs t2
/// (trace access) decomposition, and optionally writes the span timeline
/// as Chrome/Perfetto trace-event JSON.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let raw = args.required("query")?;
    let query = match prov_core::parse_query(raw).map_err(|e| e.to_string())? {
        prov_core::ParsedQuery::Lineage(q) => q,
        prov_core::ParsedQuery::Impact(_) => {
            return Err("profile supports lineage queries only (lin(<P:Y[i]>, {focus}))".into())
        }
    };
    let runs = select_runs(args, &store)?;
    let algo = args.get("algo").unwrap_or("both");
    if !matches!(algo, "ni" | "indexproj" | "both") {
        return Err(format!("unknown --algo {algo:?} (ni|indexproj|both)"));
    }

    let obs = Obs::enabled();
    store.register_metrics(&obs.metrics);
    store.attach_journal(&obs.journal);
    obs.journal.register_metrics(&obs.metrics);
    let before = obs.metrics.snapshot();
    println!("{query}");
    let fingerprint = PlanCache::fingerprint(&query);
    let tolerance: f64 = args.get_parsed("tolerance")?.unwrap_or(10.0);

    let mut ran_ni = false;
    let mut ran_ip = false;
    if algo != "indexproj" {
        // Each algorithm gets its own trace id, so the journal separates
        // NI's events from INDEXPROJ's in the same process.
        let ctx = QueryCtx::new(raw).with_fingerprint(fingerprint);
        let answers = NaiveLineage::new()
            .run_multi_ctx(&store, &runs, &query, &obs, &ctx)
            .map_err(|e| e.to_string())?;
        let bindings: usize = answers.iter().map(|a| a.bindings.len()).sum();
        println!("NI: {} run(s), {bindings} lineage binding(s)", answers.len());
        ran_ni = true;
    }
    if algo != "ni" {
        let df = resolve_workflow(args, &store)?;
        let ex = IndexProj::new(&df)
            .explain_with(
                &query,
                &store.index_catalog(),
                |step, id| Some(store.port_cardinality(id, runs[0], &step.processor, &step.port)),
                &obs,
            )
            .map_err(|e| e.to_string())?;
        let ctx = QueryCtx::new(raw).with_fingerprint(fingerprint).with_prediction(
            ex.cost.index_lookups,
            ex.cost.rows_scanned,
            ex.cost.grounded,
            tolerance,
        );
        let answers =
            ex.plan.execute_multi_ctx(&store, &runs, &obs, &ctx).map_err(|e| e.to_string())?;
        let bindings: usize = answers.iter().map(|a| a.bindings.len()).sum();
        println!("INDEXPROJ: {} run(s), {bindings} lineage binding(s)", answers.len());
        ran_ip = true;
    }

    // Per-stage table with midpoint-interpolated quantiles: span
    // durations feed one standalone log2 histogram per (stage, cat).
    let aggs = obs.profiler.aggregate();
    let mut hists: std::collections::HashMap<(String, &'static str), prov_obs::Histogram> =
        std::collections::HashMap::new();
    for span in obs.profiler.spans() {
        hists
            .entry((span.name.to_string(), span.cat))
            .or_insert_with(prov_obs::Histogram::standalone)
            .record(span.dur_ns);
    }
    println!();
    println!(
        "{:<32} {:<7} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "stage", "cat", "count", "total", "max", "p50", "p95", "p99"
    );
    for a in &aggs {
        let snap = hists.get(&(a.name.clone(), a.cat)).map(|h| h.snapshot()).unwrap_or_default();
        println!(
            "{:<32} {:<7} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            a.name,
            a.cat,
            a.count,
            fmt_ns(a.total_ns),
            fmt_ns(a.max_ns),
            fmt_ns(snap.p50),
            fmt_ns(snap.p95),
            fmt_ns(snap.p99),
        );
    }

    // The paper's decomposition (§4): t1 = graph/spec traversal work,
    // t2 = trace (store) access work.
    let total =
        |name: &str| -> u64 { aggs.iter().filter(|a| a.name == name).map(|a| a.total_ns).sum() };
    println!();
    if ran_ni {
        let traverse = total("ni.traverse");
        let t2 = total("ni.hop");
        println!(
            "NI:        t1 (graph traversal) = {:>10}   t2 (trace access) = {:>10}",
            fmt_ns(traverse.saturating_sub(t2)),
            fmt_ns(t2)
        );
    }
    if ran_ip {
        let t1 = total("indexproj.plan") + total("indexproj.assemble");
        let t2 = total("indexproj.step");
        println!(
            "INDEXPROJ: t1 (plan + assemble) = {:>10}   t2 (trace access) = {:>10}",
            fmt_ns(t1),
            fmt_ns(t2)
        );
    }

    let delta = obs.metrics.snapshot().counters_since(&before);
    let touched: Vec<(&String, &u64)> = delta.iter().filter(|(_, v)| **v > 0).collect();
    if !touched.is_empty() {
        println!();
        println!("store counters for this profile run:");
        for (k, v) in touched {
            println!("  {k}: {v}");
        }
    }

    if let Some(path) = args.get("chrome-trace") {
        // Spans plus journal instants (ph "i") on one timeline — the
        // journal shares the profiler's origin, so timestamps line up.
        let mut events = obs.profiler.chrome_trace_events();
        events.extend(prov_obs::chrome_instant_events(&obs.journal.events()));
        std::fs::write(path, json::render(&events)?).map_err(|e| e.to_string())?;
        println!();
        println!(
            "chrome trace written to {path} ({} events); load it in ui.perfetto.dev",
            events.len()
        );
    }

    let journal_events = obs.journal.events().len();
    let (persisted, slow) = journal_io::persist(args.required("db")?, &obs.journal)?;
    println!();
    println!(
        "journal: {journal_events} event(s) ({} dropped), {persisted} persisted, \
         {slow} slow/drift entr{} — see `tprov tail` / `tprov slow`",
        obs.journal.dropped(),
        if slow == 1 { "y" } else { "ies" },
    );
    Ok(())
}

/// One step row of `explain --format json`. Field names are part of the
/// CLI contract.
#[derive(serde::Serialize)]
struct ExplainStepReport {
    step: usize,
    index: String,
    processor: String,
    port: String,
    probe: String,
    probe_depth: usize,
    expected_depth: usize,
    class: String,
    served: bool,
    predicted_lookups: u64,
    predicted_rows: u64,
    slice_keys: u64,
    slice_rows: u64,
    slice_depth: usize,
}

/// One query's worth of `explain --format json` output.
#[derive(serde::Serialize)]
struct ExplainReport {
    query: String,
    servable: bool,
    steps: Vec<ExplainStepReport>,
    diagnostics: Vec<prov_dataflow::DiagnosticJson>,
    predicted_lookups: u64,
    predicted_rows: u64,
    grounded: bool,
    check: Option<prov_core::CostCheck>,
}

/// Static plan verification and cost prediction (`prov-verify`): compiles
/// each query, checks every plan step against the store's index catalog,
/// predicts per-step `index_lookups`/`rows_scanned` from table statistics,
/// and — with `--check` — executes the plan and compares the prediction
/// against the store's actual counters. Exit is nonzero on any `E1xx`
/// finding or a failed check, so the command slots into CI as a gate.
fn cmd_explain(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let df = resolve_workflow(args, &store)?;
    let ip = IndexProj::new(&df);
    let run = RunId(args.get_parsed("run")?.unwrap_or(0));
    let tolerance: f64 = args.get_parsed("tolerance")?.unwrap_or(10.0);
    let json_format = match args.get("format").unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    };

    // The store's own catalog, minus any indexes the user asks to model
    // away (`--without-index xform_in` shows what losing an index costs).
    let mut catalog = store.index_catalog();
    for spec in args.get_all("without-index") {
        for name in spec.split(',').filter(|s| !s.is_empty()) {
            let id = prov_store::IndexId::parse(name).ok_or_else(|| {
                format!("unknown index {name:?} (xform_out|xform_in|xfer_dst|xfer_src)")
            })?;
            catalog = catalog.without(id);
        }
    }

    // With no query: one unfocused coarse query per workflow output — the
    // shape the CI explain-gate sweeps over every example spec.
    let queries: Vec<LineageQuery> = match args.get("query") {
        Some(raw) => match prov_core::parse_query(raw).map_err(|e| e.to_string())? {
            prov_core::ParsedQuery::Lineage(q) => vec![q],
            prov_core::ParsedQuery::Impact(_) => {
                return Err("explain supports lineage queries only (lin(<P:Y[i]>, {focus}))".into())
            }
        },
        None => df
            .outputs
            .iter()
            .map(|o| {
                LineageQuery::unfocused(
                    PortRef::new(df.name.as_str(), &o.name),
                    Index::empty(),
                    &df,
                )
            })
            .collect(),
    };

    let obs = Obs::enabled();
    let mut errors = 0usize;
    let mut failed_checks = 0usize;
    let mut reports: Vec<ExplainReport> = Vec::new();
    for query in &queries {
        let ex = ip
            .explain_with(
                query,
                &catalog,
                |step, id| Some(store.port_cardinality(id, run, &step.processor, &step.port)),
                &obs,
            )
            .map_err(|e| e.to_string())?;
        errors += ex.report.error_count();

        let check = if args.has_flag("check") && ex.is_servable() {
            let before = store.stats().snapshot();
            ex.plan.execute(&store, run).map_err(|e| e.to_string())?;
            let delta = store.stats().snapshot().since(before);
            let chk = ex.cost.check(
                delta.index_lookups,
                delta.records_read + delta.rows_scanned,
                tolerance,
            );
            // Predicted-vs-actual as obs gauges, next to the store.*
            // counters, for anyone scraping the metrics registry.
            obs.metrics.set_gauge("explain.predicted_lookups", chk.predicted_lookups);
            obs.metrics.set_gauge("explain.actual_lookups", chk.actual_lookups);
            obs.metrics.set_gauge("explain.predicted_rows", chk.predicted_rows);
            obs.metrics.set_gauge("explain.actual_rows", chk.actual_rows);
            if !chk.ok {
                failed_checks += 1;
            }
            Some(chk)
        } else {
            None
        };

        if json_format {
            reports.push(ExplainReport {
                query: query.to_string(),
                servable: ex.is_servable(),
                steps: ex
                    .plan
                    .steps
                    .iter()
                    .zip(&ex.report.steps)
                    .zip(&ex.cost.per_step)
                    .enumerate()
                    .map(|(i, ((step, v), cost))| {
                        let card = ex.cardinalities[i].unwrap_or_default();
                        ExplainStepReport {
                            step: i,
                            index: v.index_id.name().to_string(),
                            processor: step.processor.to_string(),
                            port: step.port.to_string(),
                            probe: step.index.to_string(),
                            probe_depth: step.index.len(),
                            expected_depth: step.expected_depth,
                            class: v.class.label().to_string(),
                            served: v.served,
                            predicted_lookups: cost.index_lookups,
                            predicted_rows: cost.rows_scanned,
                            slice_keys: card.keys,
                            slice_rows: card.rows,
                            slice_depth: card.max_depth,
                        }
                    })
                    .collect(),
                diagnostics: prov_dataflow::json_records(&ex.report.diagnostics),
                predicted_lookups: ex.cost.index_lookups,
                predicted_rows: ex.cost.rows_scanned,
                grounded: ex.cost.grounded,
                check,
            });
        } else {
            println!("{query}");
            println!(
                "plan: {} step(s); catalog serves: {}",
                ex.plan.steps.len(),
                catalog.available().iter().map(|id| id.name()).collect::<Vec<_>>().join(", ")
            );
            for (i, ((step, v), cost)) in
                ex.plan.steps.iter().zip(&ex.report.steps).zip(&ex.cost.per_step).enumerate()
            {
                let card = ex.cardinalities[i].unwrap_or_default();
                println!(
                    "  s{i}  {:<9} {}:{}{}  depth {}/{}  {:<13} lookups={} rows~{}  \
                     (slice: {} keys, {} rows)",
                    v.index_id.name(),
                    step.processor,
                    step.port,
                    step.index,
                    step.index.len(),
                    step.expected_depth,
                    v.class.label(),
                    cost.index_lookups,
                    cost.rows_scanned,
                    card.keys,
                    card.rows,
                );
            }
            println!(
                "predicted: {} index lookups, ~{} rows{}",
                ex.cost.index_lookups,
                ex.cost.rows_scanned,
                if ex.cost.grounded { "" } else { " (ungrounded: no table statistics)" }
            );
            if !ex.report.diagnostics.is_empty() {
                print!("{}", prov_dataflow::render_text(&ex.report.diagnostics));
            }
            if let Some(chk) = check {
                println!(
                    "check: predicted {} lookups / ~{} rows vs actual {} / {} \
                     (tolerance {}x) — {}",
                    chk.predicted_lookups,
                    chk.predicted_rows,
                    chk.actual_lookups,
                    chk.actual_rows,
                    chk.tolerance,
                    if chk.ok { "ok" } else { "FAILED" }
                );
            }
            println!();
        }
    }
    if json_format {
        println!("{}", json::render(&reports)?);
    }
    if errors > 0 {
        Err(format!("explain: {errors} error-level finding(s)"))
    } else if failed_checks > 0 {
        Err(format!("explain: {failed_checks} failed cost check(s)"))
    } else {
        Ok(())
    }
}

/// Runs the static diagnostics pass (`prov_dataflow::analyze`) over a
/// workflow specification and reports rustc-style findings. Error-level
/// diagnostics make the command exit nonzero, so `lint` slots into CI.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let df = load_workflow(args)?;
    let mut config = AnalyzeConfig::default();
    if let Some(t) = args.get_parsed("iteration-threshold")? {
        config.iteration_depth_threshold = t;
    }
    let diagnostics = prov_dataflow::analyze_with(&df, &config);
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", prov_dataflow::render_text(&diagnostics)),
        "json" => println!("{}", json::render(&prov_dataflow::json_records(&diagnostics))?),
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    }
    let errors = prov_dataflow::error_count(&diagnostics);
    if errors > 0 {
        Err(format!("lint: {errors} error(s) in {}", df.name))
    } else {
        Ok(())
    }
}

fn cmd_dot(args: &Args) -> Result<(), String> {
    let df = load_workflow(args)?;
    if args.has_flag("lint") {
        let diagnostics = prov_dataflow::analyze(&df);
        print!("{}", to_dot_with_diagnostics(&df, &diagnostics));
    } else {
        print!("{}", to_dot(&df));
    }
    Ok(())
}

/// Compares a lineage question across two runs (§3.4): shared plan, one
/// execution per run, set difference of the answers — plus the trace-level
/// invocation-count diff.
fn cmd_diff(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let df = resolve_workflow(args, &store)?;
    let a = RunId(args.get_parsed("a")?.ok_or("missing required --a")?);
    let b = RunId(args.get_parsed("b")?.ok_or("missing required --b")?);
    let target = parse_port_ref(args.required("target")?)?;
    let query = LineageQuery::focused(target, parse_index(args)?, parse_focus(args));
    println!("{query}");
    let diff = prov_core::diff_lineage(&df, &store, a, b, &query).map_err(|e| e.to_string())?;
    print!("{diff}");
    let tdiff = prov_core::diff_traces(&store, a, b);
    let divergent = tdiff.divergent();
    if divergent.is_empty() {
        println!("trace shapes identical ({} processors)", tdiff.invocations.len());
    } else {
        println!("divergent iteration structure:");
        for (p, x, y) in divergent {
            println!("  {p}: {x} vs {y} invocations");
        }
    }
    Ok(())
}

/// Value-predicated search: where did a value appear, and (optionally) what
/// is its lineage from each of those bindings?
fn cmd_find_value(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let raw = args.required("value")?;
    // Accept either full Value JSON or a bare string shorthand.
    let value: Value = serde_json::from_str(raw).unwrap_or_else(|_| Value::str(raw));
    let runs = select_runs(args, &store)?;
    let focus = parse_focus(args);
    for run in runs {
        let hits = store.bindings_with_value(run, &value);
        println!("{run}: value {value} appears in {} binding(s)", hits.len());
        for b in &hits {
            let resolved = store.resolve(b).map_err(|e| e.to_string())?;
            println!("  {resolved}");
            if args.has_flag("lineage") {
                let q = LineageQuery::focused(
                    resolved.port.clone(),
                    resolved.index.clone(),
                    focus.iter().cloned(),
                );
                let ans = NaiveLineage::new().run(&store, run, &q).map_err(|e| e.to_string())?;
                for lb in &ans.bindings {
                    println!("    ⇐ {lb}");
                }
            }
        }
    }
    Ok(())
}

/// Renders one run's provenance *graph* (bindings + dependencies), as DOT
/// or JSON. Useful for small traces only — the point of the paper is that
/// you rarely want to look at this whole graph.
fn cmd_trace_dot(args: &Args) -> Result<(), String> {
    let store = open_db(args)?;
    let run: u64 = args.get_parsed("run")?.unwrap_or(0);
    let graph = prov_store::ProvenanceGraph::of_run(&store, RunId(run));
    let (nodes, edges) = graph.size();
    eprintln!("provenance graph of run:{run}: {nodes} nodes, {edges} edges");
    if args.has_flag("json") {
        println!("{}", graph.to_json().map_err(|e| e.to_string())?);
    } else {
        print!("{}", graph.to_dot(RunId(run)));
    }
    Ok(())
}
