//! The single JSON renderer behind every `--format json` surface.
//!
//! `lint --format json`, `metrics --format json` and `profile
//! --chrome-trace` all funnel through [`render`], so the CLI has exactly
//! one opinion about JSON encoding (pretty-printed, stable field order
//! from the serialized types themselves).

/// Pretty-prints any serializable value.
pub fn render<T: serde::Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string_pretty(value).map_err(|e| format!("json encoding failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_maps_and_sequences() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("a", 1);
        assert_eq!(render(&map).unwrap(), "{\n  \"a\": 1\n}");
        assert_eq!(render(&vec![1, 2]).unwrap(), "[\n  1,\n  2\n]");
    }
}
