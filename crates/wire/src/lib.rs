//! # prov-wire
//!
//! The length-prefixed frame codec shared by every TCP endpoint in the
//! system: the WAL-shipping replication stream (`prov-repl`) and the
//! concurrent provenance daemon (`prov-serve`) speak one framing dialect,
//! so a frame written by either side can be read by the other's codec and
//! the robustness guarantees below hold everywhere.
//!
//! Every message is `tag (1 byte) | len (u32 LE) | payload[len]`. Control
//! messages carry JSON payloads; bulk messages (WAL frame chunks, ingest
//! batches) carry raw or JSON-encoded bodies under the same framing.
//!
//! Robustness properties of the *inbound* path:
//!
//! * **No trusted length prefixes.** A framed length beyond
//!   [`MAX_FRAME_LEN`] — or a raw (unframed) body beyond [`MAX_RAW_LEN`] —
//!   is rejected with a typed [`FrameTooLarge`] error *before any
//!   allocation*, so a malformed or malicious peer cannot make the reader
//!   allocate gigabytes from four bytes of input.
//! * **Timeouts never tear messages.** Read timeouts set for liveness
//!   polling surface only *between* messages (while waiting for a tag
//!   byte); once a tag has arrived the rest of the message is read to
//!   completion across any number of `WouldBlock`/`TimedOut` retries.
//! * **EOF is classified.** A clean EOF at a message boundary is
//!   `Ok(None)` (the peer hung up); an EOF mid-message is an
//!   `UnexpectedEof` error (the peer died mid-frame).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

/// Upper bound on a single framed message; a control message is tiny and
/// a WAL frames chunk is a few tens of KiB, so anything near this is
/// corruption or a hostile peer.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Upper bound on a raw (unframed) body announced by a header — the
/// snapshot-bootstrap path. Snapshots are full store images, so the bound
/// is generous, but it still turns a forged 2^60-byte header into a typed
/// refusal instead of an allocation attempt.
pub const MAX_RAW_LEN: u64 = 1024 * 1024 * 1024;

/// Typed rejection of a length prefix beyond the protocol bound. Raised
/// on the inbound path *before* the oversized buffer would be allocated;
/// carried as the source of an `io::Error` with kind `InvalidData`, so
/// existing `io::Result` plumbing passes it through untouched — use
/// [`frame_too_large`] to recover the typed view at the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The length the peer announced.
    pub len: u64,
    /// The bound it violated ([`MAX_FRAME_LEN`] or [`MAX_RAW_LEN`]).
    pub max: u64,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame of {} bytes exceeds the protocol limit of {} bytes", self.len, self.max)
    }
}

impl std::error::Error for FrameTooLarge {}

impl FrameTooLarge {
    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

/// Recovers the typed [`FrameTooLarge`] from an `io::Error`, if that is
/// what it carries.
pub fn frame_too_large(e: &io::Error) -> Option<&FrameTooLarge> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<FrameTooLarge>())
}

/// Writes one framed message.
pub fn write_msg<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        FrameTooLarge { len: payload.len() as u64, max: u64::from(MAX_FRAME_LEN) }.into_io()
    })?;
    if len > MAX_FRAME_LEN {
        return Err(FrameTooLarge { len: u64::from(len), max: u64::from(MAX_FRAME_LEN) }.into_io());
    }
    w.write_all(&[tag])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Serializes `value` as JSON and writes it as one framed message.
pub fn write_json<W: Write, T: Serialize>(w: &mut W, tag: u8, value: &T) -> io::Result<()> {
    let payload = serde_json::to_vec(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_msg(w, tag, &payload)
}

/// Reads until `buf` is full, retrying reads that time out (so a read
/// timeout set for liveness checks cannot tear a message mid-body). A
/// clean EOF mid-buffer is an `UnexpectedEof` error.
pub fn read_exact_retry<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-message"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one framed message. Returns `Ok(None)` on a clean EOF *at a
/// message boundary* (the peer hung up). A timeout while waiting for the
/// tag byte surfaces as `WouldBlock`/`TimedOut` so callers can poll a stop
/// flag; once the tag byte has arrived the rest is read to completion. A
/// length prefix beyond [`MAX_FRAME_LEN`] is a typed [`FrameTooLarge`]
/// rejection before any allocation.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut len = [0u8; 4];
    read_exact_retry(r, &mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(FrameTooLarge { len: u64::from(len), max: u64::from(MAX_FRAME_LEN) }.into_io());
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_retry(r, &mut payload)?;
    Ok(Some((tag[0], payload)))
}

/// Reads exactly `len` raw (unframed) bytes — a bootstrap body. A `len`
/// beyond [`MAX_RAW_LEN`] is a typed [`FrameTooLarge`] rejection before
/// any allocation: the announcing header travels over the same untrusted
/// wire as everything else.
pub fn read_raw<R: Read + ?Sized>(r: &mut R, len: u64) -> io::Result<Vec<u8>> {
    if len > MAX_RAW_LEN {
        return Err(FrameTooLarge { len, max: MAX_RAW_LEN }.into_io());
    }
    let mut buf = vec![
        0u8;
        usize::try_from(len).map_err(|_| io::Error::new(
            io::ErrorKind::InvalidData,
            "raw body too large for this platform"
        ))?
    ];
    read_exact_retry(r, &mut buf)?;
    Ok(buf)
}

/// Decodes a JSON control payload.
pub fn decode<T: Deserialize>(payload: &[u8]) -> io::Result<T> {
    serde_json::from_slice(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_framed_messages() {
        let mut wire = Vec::new();
        write_msg(&mut wire, 0x42, b"payload bytes").unwrap();
        write_json(&mut wire, 0x43, &vec![1u64, 2, 3]).unwrap();

        let mut r = wire.as_slice();
        let (tag, payload) = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(tag, 0x42);
        assert_eq!(payload, b"payload bytes");
        let (tag, payload) = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(tag, 0x43);
        let back: Vec<u64> = decode(&payload).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert!(read_msg(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_a_typed_frame_too_large() {
        // A 4-GiB length prefix must be refused before allocation, and the
        // refusal must be machine-matchable, not a stringly io::Error.
        let mut wire = vec![0x42];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_msg(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let typed = frame_too_large(&err).expect("typed FrameTooLarge");
        assert_eq!(typed.len, u64::from(u32::MAX));
        assert_eq!(typed.max, u64::from(MAX_FRAME_LEN));
    }

    #[test]
    fn oversized_raw_body_is_a_typed_frame_too_large() {
        // The bootstrap path reads an unframed body whose length comes
        // from an untrusted header; a forged huge length must not reach
        // the allocator.
        let err = read_raw(&mut io::empty(), u64::MAX).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let typed = frame_too_large(&err).expect("typed FrameTooLarge");
        assert_eq!(typed.len, u64::MAX);
        assert_eq!(typed.max, MAX_RAW_LEN);
        // A sane length on an empty reader is an EOF, not a limit error.
        let err = read_raw(&mut io::empty(), 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_message_is_an_unexpected_eof() {
        let mut wire = Vec::new();
        write_msg(&mut wire, 0x42, b"full payload").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_msg(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_write_is_refused() {
        // Symmetric guard on the outbound path (cheap: just a length
        // check; the payload is already in memory).
        struct NullWriter;
        impl Write for NullWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let err = write_msg(&mut NullWriter, 0x42, &huge).unwrap_err();
        assert!(frame_too_large(&err).is_some());
    }
}
