//! Property test for the replication staleness contract: a follower
//! paused at **any** frame boundary is not "wrong", it is *earlier* — its
//! store is exactly the state reached by replaying the durable prefix,
//! and on that partial trace the two lineage algorithms still agree
//! bit-for-bit (NI ≡ INDEXPROJ). This is what makes `--max-lag` a purely
//! quantitative knob: bounded staleness never changes *which* answer you
//! get for a prefix, only how old that prefix is allowed to be.

use proptest::prelude::*;

use prov_store::WalCursor;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prov-repl-props");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Reads every frame payload from a (marker-less) primary WAL.
fn payloads(path: &std::path::Path) -> Vec<Vec<u8>> {
    let mut cursor = WalCursor::open(path).unwrap();
    let mut out = Vec::new();
    while cursor.next_frame().unwrap().is_some() {
        out.push(cursor.payload().to_vec());
    }
    out
}

fn point_queries() -> Vec<LineageQuery> {
    [(0u32, 0u32), (0, 1), (1, 0), (1, 1)]
        .into_iter()
        .map(|(i, j)| {
            LineageQuery::focused(
                PortRef::new("testbed", "product"),
                Index::from(vec![i, j]),
                [ProcessorName::from("LISTGEN_1")],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A testbed primary of random size is cut at a random frame boundary
    /// `k`; the first `k` payloads are replayed through the follower's
    /// apply path into a fresh store. On that prefix store, for every
    /// point query and every run the prefix knows, NI and INDEXPROJ
    /// produce identical `LineageAnswer`s — and at `k = total` they both
    /// equal the primary's full answers.
    #[test]
    fn any_frame_prefix_answers_consistently(
        l in 2usize..=3,
        d in 2usize..=3,
        n_runs in 1usize..=3,
        cut_pct in 0u32..=100,
    ) {
        let path = tmp(&format!("prefix-{l}-{d}-{n_runs}"));
        let df = testbed::generate(l);
        let store = TraceStore::open(&path).unwrap();
        store.register_workflow(
            &ProcessorName::from("testbed"),
            serde_json::to_string(&df).unwrap(),
        );
        let runs: Vec<RunId> =
            (0..n_runs).map(|_| testbed::run(&df, d, &store).run_id).collect();
        store.sync_wal().unwrap();

        let frames = payloads(&path);
        prop_assert!(!frames.is_empty());
        let k = (frames.len() * cut_pct as usize).div_ceil(100).min(frames.len());

        // The follower's replay path, paused after exactly k frames.
        let partial = TraceStore::in_memory();
        for payload in &frames[..k] {
            partial.apply_replicated(payload).unwrap();
        }

        // The prefix may know only some runs, and at most one of them is
        // mid-flight (its BeginRun is inside the prefix, its completion
        // past the cut). Lineage over a mid-flight run is legitimately
        // algorithm-dependent — NI needs the derivation chain up to the
        // queried output, while INDEXPROJ projects over the spec graph and
        // can see the focus binding before the output exists — so the
        // contract is stated over *finished* runs: every run the prefix
        // has seen complete answers exactly as it does on the primary.
        let mut known: Vec<RunId> =
            partial.runs().iter().filter(|r| r.finished).map(|r| r.id).collect();
        known.sort_unstable_by_key(|r| r.0);
        prop_assert!(known.iter().all(|r| runs.contains(r)));

        // Cross-algorithm equality is over the semantic answer (run +
        // bindings); the algorithms legitimately differ in traversal
        // counters (`trace_queries`, `nodes_visited`).
        let semantic = |answers: &[LineageAnswer]| {
            answers
                .iter()
                .map(|a| (a.run, a.bindings.clone()))
                .collect::<Vec<_>>()
        };
        let ip = IndexProj::new(&df);
        for q in point_queries() {
            let ni = NaiveLineage::new().run_multi(&partial, &known, &q).unwrap();
            let proj = ip.run_multi(&partial, &known, &q).unwrap();
            prop_assert_eq!(
                semantic(&ni),
                semantic(&proj),
                "NI and INDEXPROJ diverged at prefix {}",
                k
            );

            // The full prefix *is* the primary: answers must be identical
            // within the same algorithm, counters and all.
            if k == frames.len() {
                let full_ni = NaiveLineage::new().run_multi(&store, &runs, &q).unwrap();
                prop_assert_eq!(&ni, &full_ni, "full prefix diverged from primary");
            }
        }

        drop(store);
        let _ = std::fs::remove_file(&path);
    }
}
