//! Property tests for the static cost model behind `tprov explain`:
//! over randomly drawn prov-workgen workloads and queries, the predicted
//! `rows_scanned` for a covered (servable) plan is an **upper bound** on
//! the store's observed counters and stays within a 10× factor of them,
//! and the predicted `index_lookups` match the observed count **exactly**
//! (the lookup model is structural: `|p| + 2` B-tree descents per step).

use proptest::prelude::*;

use prov_workgen::{imaging, testbed};
use taverna_prov::prelude::*;

/// Runs one workload + query case through `explain_against` and the real
/// executor, and checks the prediction contract at tolerance 10×.
fn assert_prediction_holds(
    df: &prov_dataflow::Dataflow,
    store: &TraceStore,
    run: RunId,
    q: &LineageQuery,
    label: &str,
) {
    let ip = IndexProj::new(df);
    let ex = ip
        .explain_against(q, store, run, &Obs::disabled())
        .unwrap_or_else(|e| panic!("{label}: explain failed: {e}"));
    assert!(ex.is_servable(), "{label}: full catalog must serve every plan");
    assert!(ex.cost.grounded, "{label}: live-store explanations are grounded");

    let before = store.stats().snapshot();
    ex.plan.execute(store, run).unwrap_or_else(|e| panic!("{label}: execute failed: {e}"));
    let delta = store.stats().snapshot().since(before);
    let actual_rows = delta.records_read + delta.rows_scanned;

    assert_eq!(ex.cost.index_lookups, delta.index_lookups, "{label}: lookup prediction is exact");
    assert!(
        ex.cost.rows_scanned >= actual_rows,
        "{label}: predicted {} rows must bound actual {actual_rows}",
        ex.cost.rows_scanned,
    );
    let chk = ex.cost.check(delta.index_lookups, actual_rows, 10.0);
    assert!(
        chk.ok,
        "{label}: predicted {} rows not within 10x of actual {}",
        chk.predicted_rows, chk.actual_rows
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The §4.1 testbed at random size, probed at every granularity: the
    /// exact depth-2 element, a depth-1 span, and the whole collection.
    #[test]
    fn testbed_predictions_bound_observed_cost(
        l in 1usize..=3,
        d in 2usize..=4,
        i in 0u32..4,
        j in 0u32..4,
        probe_len in 0usize..=2,
        focus_listgen in any::<bool>(),
    ) {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;

        let p = [i % d as u32, j % d as u32];
        let focus = if focus_listgen {
            ProcessorName::from("LISTGEN_1")
        } else {
            ProcessorName::from(format!("CHAIN_A_{l}").as_str())
        };
        let q = LineageQuery::focused(
            PortRef::new("2TO1_FINAL", "Y"),
            Index::from_slice(&p[..probe_len]),
            [focus],
        );
        let label = format!("testbed l={l} d={d} probe={:?}", &p[..probe_len]);
        assert_prediction_holds(&df, &store, run, &q, &label);
    }

    /// The tiled-imaging pipeline (byte payloads): queries over the final
    /// output, focused on a single tile or spanning the whole collection.
    #[test]
    fn imaging_predictions_bound_observed_cost(
        tiles in 2usize..=4,
        seed in 0u64..1000,
        probe in 0u32..4,
        focused in any::<bool>(),
    ) {
        let df = imaging::imaging_workflow();
        let store = TraceStore::in_memory();
        let image = imaging::sample_image(64, seed);
        let run = imaging::run_imaging(&df, image, tiles, &store).run_id;

        let out: &str = &df.outputs[0].name;
        let index =
            if focused { Index::single(probe % tiles as u32) } else { Index::empty() };
        let q = LineageQuery::focused(
            PortRef::new(df.name.as_str(), out),
            index,
            [ProcessorName::from(df.name.as_str())],
        );
        let label = format!("imaging tiles={tiles} seed={seed} focused={focused}");
        assert_prediction_holds(&df, &store, run, &q, &label);
    }
}
