//! Integration tests for the extensions: dot-product iteration in full
//! pipelines, composite views feeding focus sets, execution reports,
//! trace audit over the workload families, and provenance-graph export.

use std::sync::Arc;

use prov_dataflow::CompositeView;
use prov_engine::ReportingSink;
use prov_store::ProvenanceGraph;
use prov_workgen::{bio, testbed};
use taverna_prov::prelude::*;

fn zip_workflow() -> (prov_dataflow::Dataflow, BehaviorRegistry) {
    // Two equal-length lists zipped pairwise, then tagged.
    let mut b = DataflowBuilder::new("zipwf");
    b.input("a", PortType::list(BaseType::String));
    b.input("b", PortType::list(BaseType::String));
    b.processor("zip")
        .in_port("x", PortType::atom(BaseType::String))
        .in_port("y", PortType::atom(BaseType::String))
        .out_port("z", PortType::atom(BaseType::String))
        .dot_iteration();
    b.arc_from_input("a", "zip", "x").unwrap();
    b.arc_from_input("b", "zip", "y").unwrap();
    b.processor("tag")
        .in_port("w", PortType::atom(BaseType::String))
        .out_port("t", PortType::atom(BaseType::String));
    b.arc("zip", "z", "tag", "w").unwrap();
    b.output("pairs", PortType::list(BaseType::String));
    b.arc_to_output("tag", "t", "pairs").unwrap();
    let df = b.build().unwrap();

    let mut reg = BehaviorRegistry::new();
    reg.register_fn("zip", |inputs| {
        let x = inputs[0].as_atom().and_then(Atom::as_str).ok_or("str")?;
        let y = inputs[1].as_atom().and_then(Atom::as_str).ok_or("str")?;
        Ok(vec![Value::str(&format!("{x}~{y}"))])
    });
    reg.register_fn("tag", |inputs| {
        let w = inputs[0].as_atom().and_then(Atom::as_str).ok_or("str")?;
        Ok(vec![Value::str(&format!("[{w}]"))])
    });
    (df, reg)
}

#[test]
fn dot_iteration_lineage_is_pairwise_and_algorithms_agree() {
    let (df, reg) = zip_workflow();
    let store = TraceStore::in_memory();
    let run = Engine::new(reg)
        .execute(
            &df,
            vec![
                ("a".into(), Value::from(vec!["a0", "a1", "a2"])),
                ("b".into(), Value::from(vec!["b0", "b1", "b2"])),
            ],
            &store,
        )
        .unwrap();
    assert_eq!(run.output("pairs"), Some(&Value::from(vec!["[a0~b0]", "[a1~b1]", "[a2~b2]"])));

    // Zip lineage: pairs[i] depends on a[i] AND b[i] — not the cross.
    for i in 0..3u32 {
        let q = LineageQuery::focused(
            PortRef::new("zipwf", "pairs"),
            Index::single(i),
            [ProcessorName::from("zipwf")],
        );
        let ni = NaiveLineage::new().run(&store, run.run_id, &q).unwrap();
        let ip = IndexProj::new(&df).run(&store, run.run_id, &q).unwrap();
        assert!(ni.same_bindings(&ip), "divergence at [{i}]:\nNI {ni}\nIP {ip}");
        assert_eq!(ni.bindings.len(), 2);
        for b in &ni.bindings {
            assert_eq!(b.index, Index::single(i));
        }
    }
}

#[test]
fn composite_view_names_expand_into_focus_sets() {
    // Group the two GK description stages into one composite and ask a
    // lineage question "at the composite".
    let df = bio::genes2kegg_workflow();
    let view = CompositeView::new().group(
        "kegg_lookup",
        [
            ProcessorName::from("get_pathways_by_genes"),
            ProcessorName::from("get_pathways_by_genes_2"),
        ],
    );
    view.validate(&df).unwrap();

    let db = Arc::new(bio::KeggDb::small(7));
    let store = TraceStore::in_memory();
    let run = bio::run_genes2kegg(&df, db, bio::sample_gene_lists(2, 2, 3), &store).run_id;

    let focus = view.expand_focus([ProcessorName::from("kegg_lookup")]);
    assert_eq!(focus.len(), 2);
    let q = LineageQuery::focused(
        PortRef::new("genes2Kegg", "paths_per_gene"),
        Index::single(0),
        focus,
    );
    let ni = NaiveLineage::new().run(&store, run, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    // Only the left-branch lookup is upstream of paths_per_gene…
    assert!(ni
        .bindings
        .iter()
        .all(|b| b.port == PortRef::new("get_pathways_by_genes", "genes_id_list")));
    assert!(!ni.bindings.is_empty());
    // …while commonPathways goes through the right-branch member of the
    // same composite.
    let q2 = LineageQuery::focused(
        PortRef::new("genes2Kegg", "commonPathways"),
        Index::single(0),
        view.expand_focus([ProcessorName::from("kegg_lookup")]),
    );
    let ans2 = IndexProj::new(&df).run(&store, run, &q2).unwrap();
    assert!(ans2
        .bindings
        .iter()
        .any(|b| b.port == PortRef::new("get_pathways_by_genes_2", "genes_id_list")));

    // The condensed DOT hides the grouped processors.
    let dot = view.to_dot(&df);
    assert!(dot.contains("kegg_lookup"));
    assert!(!dot.contains("\"get_pathways_by_genes\""));
}

#[test]
fn reporting_sink_counts_iteration_work() {
    let df = testbed::generate(3);
    let store = TraceStore::in_memory();
    let reporting = ReportingSink::new(&store);
    let engine = Engine::new(testbed::registry());
    engine.execute(&df, vec![("ListSize".into(), Value::int(4))], &reporting).unwrap();
    let report = reporting.report();
    let get = |name: &str| {
        report.invocations.iter().find(|(p, _)| p.as_str() == name).map(|(_, n)| *n).unwrap_or(0)
    };
    assert_eq!(get("LISTGEN_1"), 1);
    assert_eq!(get("CHAIN_A_1"), 4); // one per element
    assert_eq!(get("2TO1_FINAL"), 16); // d²
    assert!(report.xfer_elements > 0);
    // Events also reached the store through the decorator.
    assert!(store.total_record_count() > 0);
}

#[test]
fn audit_is_clean_for_all_workload_families() {
    // testbed
    let df = testbed::generate(4);
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, 3, &store).run_id;
    assert!(prov_core::audit_run(&df, &store, run).unwrap().is_clean());

    // GK
    let gk = bio::genes2kegg_workflow();
    let store = TraceStore::in_memory();
    let run = bio::run_genes2kegg(
        &gk,
        Arc::new(bio::KeggDb::small(5)),
        bio::sample_gene_lists(2, 2, 9),
        &store,
    )
    .run_id;
    assert!(prov_core::audit_run(&gk, &store, run).unwrap().is_clean());

    // PD
    let pd = bio::protein_discovery_workflow(8);
    let store = TraceStore::in_memory();
    let run = bio::run_protein_discovery(
        &pd,
        Arc::new(bio::PubMedCorpus::new(11, 30)),
        vec!["p53"],
        &store,
    )
    .run_id;
    assert!(prov_core::audit_run(&pd, &store, run).unwrap().is_clean());
}

#[test]
fn provenance_graph_export_matches_trace_contents() {
    let df = testbed::generate(2);
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, 3, &store).run_id;
    let graph = ProvenanceGraph::of_run(&store, run);
    let (nodes, edges) = graph.size();
    assert!(nodes > 0);
    // Every xfer contributes exactly one edge; xforms one edge per
    // (input, output) pair.
    let xfer_edges = graph.edges.iter().filter(|e| e.kind == "xfer").count();
    assert_eq!(xfer_edges as u64, store.runs()[0].xfer_count);
    assert!(edges >= xfer_edges);
    // DOT renders and mentions the final join.
    assert!(graph.to_dot(run).contains("2TO1_FINAL"));
}

#[test]
fn parsed_queries_run_end_to_end() {
    let df = testbed::generate(3);
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, 4, &store).run_id;
    let q = prov_core::parse_lineage("lin(⟨2TO1_FINAL:Y[1,2]⟩, {LISTGEN_1})").unwrap();
    let ans = IndexProj::new(&df).run(&store, run, &q).unwrap();
    assert_eq!(ans.bindings.len(), 1);
    assert_eq!(ans.bindings[0].value, Value::int(4));
}
