//! Cross-crate integration tests exercising the full pipeline through the
//! `taverna-prov` facade: specify → execute → store → query.

use taverna_prov::prelude::*;

fn pipeline() -> (prov_dataflow::Dataflow, BehaviorRegistry) {
    let mut b = DataflowBuilder::new("etl");
    b.input("records", PortType::list(BaseType::String));
    b.processor("parse")
        .in_port("raw", PortType::atom(BaseType::String))
        .out_port("fields", PortType::list(BaseType::String));
    b.arc_from_input("records", "parse", "raw").unwrap();
    b.processor("validate")
        .in_port("fields", PortType::list(BaseType::String))
        .out_port("ok", PortType::atom(BaseType::String));
    b.arc("parse", "fields", "validate", "fields").unwrap();
    b.output("loaded", PortType::list(BaseType::String));
    b.arc_to_output("validate", "ok", "loaded").unwrap();
    let wf = b.build().unwrap();

    let mut reg = BehaviorRegistry::new();
    reg.register_fn("parse", |inputs| {
        let raw = inputs[0].as_atom().and_then(Atom::as_str).ok_or("string")?;
        Ok(vec![Value::List(raw.split(',').map(Value::str).collect())])
    });
    reg.register_fn("validate", |inputs| {
        let n = inputs[0].as_list().map_or(0, <[Value]>::len);
        Ok(vec![Value::str(&format!("ok:{n}"))])
    });
    (wf, reg)
}

#[test]
fn specify_execute_store_query_round_trip() {
    let (wf, reg) = pipeline();
    let store = TraceStore::in_memory();
    let outcome = Engine::new(reg)
        .execute(&wf, vec![("records".into(), Value::from(vec!["a,b", "c,d,e"]))], &store)
        .unwrap();
    assert_eq!(outcome.output("loaded"), Some(&Value::from(vec!["ok:2", "ok:3"])));

    // The provenance-challenge question shape: which input file loaded
    // element 1, and what did the checks say?
    let q = LineageQuery::focused(
        PortRef::new("etl", "loaded"),
        Index::single(1),
        [ProcessorName::from("etl"), ProcessorName::from("validate")],
    );
    let ni = NaiveLineage::new().run(&store, outcome.run_id, &q).unwrap();
    let ip = IndexProj::new(&wf).run(&store, outcome.run_id, &q).unwrap();
    assert!(ni.same_bindings(&ip));

    let input = ip.bindings.iter().find(|b| b.port == PortRef::new("etl", "records")).unwrap();
    assert_eq!(input.value, Value::str("c,d,e"));
    let checked =
        ip.bindings.iter().find(|b| b.port == PortRef::new("validate", "fields")).unwrap();
    assert_eq!(checked.value, Value::from(vec!["c", "d", "e"]));
}

#[test]
fn plan_cache_serves_repeated_queries_across_runs() {
    let (wf, reg) = pipeline();
    let store = TraceStore::in_memory();
    let engine = Engine::new(reg);
    let mut runs = Vec::new();
    for i in 0..5 {
        let input = Value::from(vec![format!("x{i},y{i}")]);
        runs.push(engine.execute(&wf, vec![("records".into(), input)], &store).unwrap().run_id);
    }
    let cache = PlanCache::new(IndexProj::new(&wf));
    let q = LineageQuery::focused(
        PortRef::new("etl", "loaded"),
        Index::single(0),
        [ProcessorName::from("etl")],
    );
    let answers = cache.run_multi(&store, &runs, &q).unwrap();
    assert_eq!(answers.len(), 5);
    for (i, a) in answers.iter().enumerate() {
        assert_eq!(a.bindings[0].value, Value::str(&format!("x{i},y{i}")));
    }
    // Ask again: the plan is reused.
    cache.run_multi(&store, &runs, &q).unwrap();
    let PlanCacheStats { hits, misses } = cache.stats();
    assert_eq!((hits, misses), (1, 1));
}

#[test]
fn store_runs_of_scopes_multi_workflow_databases() {
    // Two different workflows share one store; multi-run scopes stay per
    // workflow.
    let (wf, reg) = pipeline();
    let store = TraceStore::in_memory();
    let engine = Engine::new(reg);
    engine.execute(&wf, vec![("records".into(), Value::from(vec!["a,b"]))], &store).unwrap();

    let testbed = prov_workgen::testbed::generate(3);
    prov_workgen::testbed::run(&testbed, 4, &store);

    assert_eq!(store.runs().len(), 2);
    assert_eq!(store.runs_of(&ProcessorName::from("etl")).len(), 1);
    assert_eq!(store.runs_of(&ProcessorName::from("testbed")).len(), 1);
}

#[test]
fn dataflow_serializes_and_queries_after_deserialize() {
    let (wf, reg) = pipeline();
    let json = serde_json::to_string(&wf).unwrap();
    let mut back: prov_dataflow::Dataflow = serde_json::from_str(&json).unwrap();
    back.reindex();
    prov_dataflow::validate(&back).unwrap();

    let store = TraceStore::in_memory();
    let run = Engine::new(reg)
        .execute(&back, vec![("records".into(), Value::from(vec!["p,q"]))], &store)
        .unwrap()
        .run_id;
    let q = LineageQuery::focused(
        PortRef::new("etl", "loaded"),
        Index::single(0),
        [ProcessorName::from("etl")],
    );
    let ans = IndexProj::new(&back).run(&store, run, &q).unwrap();
    assert_eq!(ans.bindings[0].value, Value::str("p,q"));
}

#[test]
fn dot_export_renders_the_workflow() {
    let (wf, _) = pipeline();
    let dot = prov_dataflow::to_dot(&wf);
    assert!(dot.contains("digraph \"etl\""));
    assert!(dot.contains("\"parse\""));
    assert!(dot.contains("\"validate\""));
}
