//! Properties of the serve path's concurrency model.
//!
//! 1. **Order-independence**: K clients ingesting disjoint runs through
//!    one daemon concurrently leave, after canonical (per-run) ordering,
//!    exactly the store a sequential local ingest of the same runs
//!    leaves — same record counts, same lineage bindings. Interleaving
//!    at the session/queue/group-commit layers must never leak into what
//!    a run *contains*.
//! 2. **Snapshot atomicity**: a [`ReadView`] pinned at any moment while
//!    a client streams batches of B events only ever observes a
//!    whole-batch prefix — `0, B, 2B, …` records, or the finished total.
//!    A reader can race the applier, but never into the middle of a
//!    batch (one WAL frame, one write-lock acquisition per batch).
//!
//! [`ReadView`]: prov_store::ReadView

use proptest::prelude::*;

use prov_obs::Obs;
use prov_serve::{ProvServer, RemoteSink, ServeConfig};
use prov_store::SharedStore;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("prov-serve-props");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

fn cleanup(path: &std::path::PathBuf) {
    let _ = std::fs::remove_file(path);
    if let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&format!("{name}.")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

fn point_queries(l: usize) -> Vec<LineageQuery> {
    let top = (l - 1) as u32;
    [(0u32, 0u32), (top, top)]
        .into_iter()
        .map(|(i, j)| {
            LineageQuery::focused(
                PortRef::new("testbed", "product"),
                Index::from(vec![i, j]),
                [ProcessorName::from("LISTGEN_1")],
            )
        })
        .collect()
}

/// A run's identity up to its run id: record count plus the rendered NI
/// bindings of the point queries. Runs ingested in any order compare
/// equal iff their contents do.
fn run_signature(store: &TraceStore, run: RunId, l: usize) -> (u64, String) {
    let info = store.runs().into_iter().find(|i| i.id == run).unwrap();
    let bindings: Vec<String> = point_queries(l)
        .iter()
        .flat_map(|q| NaiveLineage::new().run_multi(store, &[run], q).unwrap())
        .map(|a| format!("{:?}", a.bindings))
        .collect();
    (info.xform_count + info.xfer_count, bindings.join("|"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// K concurrent writers through the daemon ≡ K sequential local
    /// ingests, after canonical ordering of the per-run signatures.
    #[test]
    fn concurrent_daemon_ingest_equals_sequential(l in 2usize..=3, k in 2usize..=4) {
        let df = testbed::generate(l);
        let wf_json = serde_json::to_string(&df).unwrap();

        // Sequential oracle: the same K (distinct-depth) runs, one store.
        let oracle = TraceStore::in_memory();
        oracle.register_workflow(&ProcessorName::from("testbed"), wf_json.clone());
        let mut oracle_sigs: Vec<(u64, String)> = (0..k)
            .map(|w| {
                let run = testbed::run(&df, 2 + w % 2, &oracle).run_id;
                run_signature(&oracle, run, l)
            })
            .collect();
        oracle_sigs.sort();

        // The same K runs, raced through one daemon.
        let path = tmp(&format!("cseq-{l}-{k}"));
        let store = SharedStore::open(&path).unwrap();
        let server =
            ProvServer::start(store, Obs::disabled(), ServeConfig::default(), "127.0.0.1:0")
                .unwrap();
        let addr = server.local_addr().to_string();
        let writers: Vec<_> = (0..k)
            .map(|w| {
                let (addr, wf, df) = (addr.clone(), wf_json.clone(), df.clone());
                std::thread::spawn(move || {
                    let sink = RemoteSink::connect(&addr, Some(wf)).unwrap();
                    testbed::run(&df, 2 + w % 2, &sink);
                    prop_assert!(sink.error().is_none(), "ingest error: {:?}", sink.error());
                    Ok(())
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap()?;
        }
        let report = server.shutdown();
        prop_assert!(!report.forced);

        let reopened = TraceStore::open(&path).unwrap();
        let infos = reopened.runs();
        prop_assert_eq!(infos.iter().filter(|i| i.finished).count(), k);
        let mut sigs: Vec<(u64, String)> =
            infos.iter().map(|i| run_signature(&reopened, i.id, l)).collect();
        sigs.sort();
        prop_assert_eq!(sigs, oracle_sigs, "concurrent ingest diverged from sequential");
        cleanup(&path);
    }

    /// A reader pinning [`prov_store::ReadView`]s while a client streams
    /// B-event batches only ever sees whole-batch prefixes.
    #[test]
    fn read_view_mid_ingest_never_sees_a_partial_batch(
        l in 2usize..=3,
        batch in prop_oneof![Just(3usize), Just(5), Just(8)],
    ) {
        let df = testbed::generate(l);
        let wf_json = serde_json::to_string(&df).unwrap();
        let path = tmp(&format!("view-{l}-{batch}"));
        let shared = SharedStore::open(&path).unwrap();
        let server = ProvServer::start(
            shared.clone(),
            Obs::disabled(),
            ServeConfig::default(),
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let writer = {
            let df = df.clone();
            std::thread::spawn(move || {
                let sink =
                    RemoteSink::connect(&addr, Some(wf_json)).unwrap().with_batch_events(batch);
                testbed::run(&df, 3, &sink);
                assert!(sink.error().is_none(), "ingest error: {:?}", sink.error());
            })
        };

        // Race the applier: pin a fresh view of every known run, as fast
        // as possible, until the writer is done.
        let mut observed: Vec<u64> = Vec::new();
        while !writer.is_finished() {
            for info in shared.runs() {
                observed.push(shared.read_view(info.id).trace_record_count());
            }
            std::thread::yield_now();
        }
        writer.join().unwrap();
        let report = server.shutdown();
        prop_assert!(!report.forced);

        let total: u64 =
            shared.runs().iter().map(|i| i.xform_count + i.xfer_count).sum();
        for count in observed {
            prop_assert!(
                count % (batch as u64) == 0 || count == total,
                "a pinned view saw a partial batch: {count} records (batch size {batch}, \
                 finished total {total})"
            );
        }
        cleanup(&path);
    }
}
