//! Serve torture: writer clients and query clients hammer one daemon
//! while the harness kills clients mid-frame (a tag with no length, a
//! torn length word, a payload cut short), replays ingest streams cut at
//! [`FaultPlan`]-chosen byte offsets, probes the inbound frame-length
//! guard, and begins a drain — the exact SIGTERM path — mid-load.
//!
//! The oracle mirrors the replication torture suite: a sequential local
//! ingest of the same workload. After every storm the daemon's store
//! must reopen clean ([`verify_store`]), every acked ingest batch must
//! be durable (the reopened store's frame count covers the highest ack),
//! every surviving run must answer NI ≡ INDEXPROJ bit-identically to the
//! oracle, and every refused or expired request must have failed with a
//! *typed* error, never a hang or a torn reply. Two drivers share the
//! harness: a fixed storm and a randomized pass seeded from
//! `CRASH_TORTURE_SEED` (printed, so failures replay).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use prov_engine::{PortBinding, TraceEvent, XformEvent};
use prov_obs::{Journal, Obs, Registry};
use prov_serve::protocol as p;
use prov_serve::{ProvServer, RemoteSink, ServeClient, ServeConfig, ServeError};
use prov_store::{FaultPlan, FaultReader, SharedStore};
use prov_workgen::testbed;
use taverna_prov::prelude::*;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("prov-serve-torture");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

/// Removes a case's WAL plus every sibling artifact (snapshots, serve
/// sidecars, journal) that hangs off its file name.
fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    if let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&format!("{name}.")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

fn queries() -> Vec<LineageQuery> {
    [(0u32, 0u32), (0, 1), (1, 0), (1, 1)]
        .into_iter()
        .map(|(i, j)| {
            LineageQuery::focused(
                PortRef::new("testbed", "product"),
                Index::from(vec![i, j]),
                [ProcessorName::from("LISTGEN_1")],
            )
        })
        .collect()
}

fn answers(
    df: &prov_dataflow::Dataflow,
    store: &TraceStore,
    runs: &[RunId],
) -> (Vec<LineageAnswer>, Vec<LineageAnswer>) {
    let ni: Vec<LineageAnswer> = queries()
        .iter()
        .flat_map(|q| NaiveLineage::new().run_multi(store, runs, q).unwrap())
        .collect();
    let ip: Vec<LineageAnswer> = queries()
        .iter()
        .flat_map(|q| IndexProj::new(df).run_multi(store, runs, q).unwrap())
        .collect();
    (ni, ip)
}

/// A running daemon over a fresh store, with a handle on its metric
/// registry so tests can assert the serve.* counters moved.
struct Daemon {
    path: PathBuf,
    registry: Registry,
    server: Option<ProvServer>,
}

fn daemon(tag: &str, cfg: ServeConfig) -> Daemon {
    let path = tmp(tag);
    let store = SharedStore::open(&path).unwrap();
    let obs = Obs {
        metrics: Registry::new(),
        profiler: prov_obs::Profiler::disabled(),
        journal: Journal::new(1 << 14),
    };
    let registry = obs.metrics.clone();
    let server = ProvServer::start(store, obs, cfg, "127.0.0.1:0").unwrap();
    Daemon { path, registry, server: Some(server) }
}

impl Daemon {
    fn addr(&self) -> String {
        self.server.as_ref().unwrap().local_addr().to_string()
    }

    fn begin_drain(&self) {
        self.server.as_ref().unwrap().begin_drain();
    }

    fn shutdown(&mut self) -> prov_serve::DrainReport {
        self.server.take().unwrap().shutdown()
    }
}

/// Streams one testbed run into the daemon through a [`RemoteSink`],
/// returning the daemon's durable frame count at the final ack.
fn stream_run(addr: &str, wf_json: &str, df: &prov_dataflow::Dataflow) -> Result<u64, ServeError> {
    let sink = RemoteSink::connect(addr, Some(wf_json.to_string()))?;
    testbed::run(df, 3, &sink);
    if let Some(e) = sink.error() {
        return Err(e);
    }
    Ok(sink.durable_frames())
}

/// Reads and discards the daemon's WELCOME frame from a raw socket.
fn consume_welcome(s: &mut TcpStream) -> bool {
    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
    let mut hdr = [0u8; 5];
    if s.read_exact(&mut hdr).is_err() {
        return false;
    }
    let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).is_ok()
}

/// A client that dies mid-frame: handshakes, writes a deliberately
/// incomplete frame, and drops the socket. The daemon's session must
/// fail cleanly without touching any other session.
fn kill_mid_frame(addr: &str, variant: usize) {
    let Ok(mut s) = TcpStream::connect(addr) else { return };
    if !consume_welcome(&mut s) {
        return;
    }
    match variant % 3 {
        // A tag with no length word behind it.
        0 => {
            let _ = s.write_all(&[p::TAG_QUERY]);
        }
        // A length word torn after two of its four bytes.
        1 => {
            let _ = s.write_all(&[p::TAG_INGEST_BEGIN, 0xE8, 0x03]);
        }
        // A declared 1000-byte payload cut off after 10 bytes.
        _ => {
            let _ = s.write_all(&[p::TAG_QUERY, 0xE8, 0x03, 0, 0]);
            let _ = s.write_all(&[b'{'; 10]);
        }
    }
}

/// Probes the inbound frame-length guard: a frame declaring a payload
/// beyond `MAX_FRAME_LEN` must come back as a typed `bad_request`, with
/// the connection still alive enough to deliver it.
fn oversize_frame_is_refused(addr: &str) {
    let mut s = TcpStream::connect(addr).unwrap();
    assert!(consume_welcome(&mut s), "no welcome before oversize probe");
    let mut frame = vec![p::TAG_QUERY];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&frame).unwrap();
    let mut hdr = [0u8; 5];
    s.read_exact(&mut hdr).expect("typed reply to an oversize frame");
    assert_eq!(hdr[0], p::TAG_ERR, "oversize frame must earn TAG_ERR");
    let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).unwrap();
    let err: p::ServeErrorMsg = p::decode(&payload).unwrap();
    assert_eq!(err.code, "bad_request", "{err:?}");
}

/// How many records one testbed run writes — the completeness bar every
/// finish-acked run must meet after a drain.
fn records_per_run(df: &prov_dataflow::Dataflow) -> u64 {
    let store = TraceStore::in_memory();
    let run = testbed::run(df, 3, &store).run_id;
    let info = store.runs().into_iter().find(|i| i.id == run).unwrap();
    info.xform_count + info.xfer_count
}

fn scratch_events() -> Vec<TraceEvent> {
    vec![TraceEvent::Xform(XformEvent {
        processor: ProcessorName::from("P"),
        invocation: 0,
        inputs: vec![PortBinding::new("x", Index::empty(), Value::str("a"))],
        outputs: vec![PortBinding::new("y", Index::empty(), Value::str("b"))],
    })]
}

/// Encodes a complete, valid ingest conversation into a buffer, then
/// replays only the prefix the [`FaultPlan`] lets through — a client
/// dying at an exact, chosen byte offset of the wire stream (mid-tag,
/// mid-length, mid-payload; `fail_read` cuts at the nth read instead).
fn cut_stream_writer(addr: &str, plan: FaultPlan) {
    let mut bytes: Vec<u8> = Vec::new();
    p::write_json(
        &mut bytes,
        p::TAG_INGEST_BEGIN,
        &p::IngestBegin { workflow: "scratch".into(), workflow_json: None },
    )
    .unwrap();
    p::write_json(
        &mut bytes,
        p::TAG_INGEST_BATCH,
        &p::IngestBatch { run: 0, seq: 0, events: scratch_events() },
    )
    .unwrap();
    p::write_json(&mut bytes, p::TAG_INGEST_FINISH, &p::IngestFinish { run: 0, seq: 0 }).unwrap();

    let mut reader = FaultReader::new(std::io::Cursor::new(bytes), plan);
    let mut cut = Vec::new();
    let mut chunk = [0u8; 113]; // odd size, so cuts land mid-frame
    loop {
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => cut.extend_from_slice(&chunk[..n]),
        }
    }
    let Ok(mut s) = TcpStream::connect(addr) else { return };
    if !consume_welcome(&mut s) {
        return;
    }
    let _ = s.write_all(&cut);
    // Drop without reading replies: the daemon must absorb both the cut
    // and the unread ack backlog.
}

/// The surviving store, post-drain: reopens clean (the drain snapshots,
/// so the WAL leads with a marker), every *finished* testbed run carries
/// exactly the oracle's record count — a finish ack means every one of
/// its batches survived — and NI ≡ INDEXPROJ on the surviving trace.
fn check_reopened(
    path: &PathBuf,
    df: &prov_dataflow::Dataflow,
    records_per_run: u64,
) -> (TraceStore, Vec<RunId>) {
    let report = prov_repl::verify_store(path).unwrap();
    assert!(report.healthy(), "store did not reopen clean: {report:?}");
    let store = TraceStore::open(path).unwrap();
    let mut runs: Vec<RunId> = Vec::new();
    for info in store.runs() {
        if !info.finished || info.workflow != ProcessorName::from("testbed") {
            continue;
        }
        assert_eq!(
            info.xform_count + info.xfer_count,
            records_per_run,
            "finished (= finish-acked) {} lost records",
            info.id
        );
        runs.push(info.id);
    }
    runs.sort_unstable_by_key(|r| r.0);
    let (ni, ip) = answers(df, &store, &runs);
    // The two algorithms agree on *what* the lineage is; their traversal
    // stats (trace_queries, nodes_visited) legitimately differ.
    let bindings =
        |v: &[LineageAnswer]| v.iter().map(|a| (a.run, a.bindings.clone())).collect::<Vec<_>>();
    assert_eq!(bindings(&ni), bindings(&ip), "NI and INDEXPROJ diverged on the surviving trace");
    (store, runs)
}

#[test]
fn concurrent_load_with_mid_frame_kills_converges_and_drains_clean() {
    const WRITERS: usize = 4;
    let df = testbed::generate(3);
    let wf_json = serde_json::to_string(&df).unwrap();

    // Oracle: the same workload ingested sequentially into a local store.
    let opath = tmp("fixed-oracle");
    let oracle = TraceStore::open(&opath).unwrap();
    oracle.register_workflow(&ProcessorName::from("testbed"), wf_json.clone());
    let oruns: Vec<RunId> = (0..WRITERS).map(|_| testbed::run(&df, 3, &oracle).run_id).collect();
    let (oracle_ni, oracle_ip) = answers(&df, &oracle, &oruns);

    // A shallow ingest queue, so slow fsyncs push back visibly.
    let mut d = daemon("fixed", ServeConfig { queue_depth: 2, ..ServeConfig::default() });
    let addr = d.addr();

    // N concurrent writers stream full runs...
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let (addr, wf, df) = (addr.clone(), wf_json.clone(), df.clone());
            std::thread::spawn(move || stream_run(&addr, &wf, &df))
        })
        .collect();
    // ...while clients die mid-frame around them and the length guard is
    // probed on a live connection.
    for k in 0..6 {
        kill_mid_frame(&addr, k);
    }
    oversize_frame_is_refused(&addr);
    // ...and M query clients hammer the same daemon. Mid-ingest answers
    // are whatever is durable; the contract is no hang and no untyped
    // failure.
    let queriers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let Ok(mut c) = ServeClient::connect(&addr) else { continue };
                    let req = p::ServeQuery {
                        query: "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})".into(),
                        run: 0,
                        all_runs: false,
                        algo: "ni".into(),
                        wf: None,
                        deadline_ms: Some(10_000),
                    };
                    match c.query(&req) {
                        Ok(_)
                        | Err(ServeError::Remote { .. })
                        | Err(ServeError::Timeout { .. })
                        | Err(ServeError::Busy { .. }) => {}
                        Err(e) => panic!("untyped query failure under load: {e}"),
                    }
                }
            })
        })
        .collect();

    let acked: Vec<u64> = writers
        .into_iter()
        .map(|h| h.join().unwrap().expect("writer stream must be fully acked"))
        .collect();
    for q in queriers {
        q.join().unwrap();
    }

    let report = d.shutdown();
    assert!(!report.forced, "drain was forced with sessions still live");

    let max_acked = acked.into_iter().max().unwrap();
    assert!(max_acked > 0, "no writer ever saw an ack");
    let (_store, runs) = check_reopened(&d.path, &df, records_per_run(&df));
    assert_eq!(runs.len(), WRITERS, "every writer's run must survive, finished");
    let store = TraceStore::open(&d.path).unwrap();
    let (ni, ip) = answers(&df, &store, &runs);
    assert_eq!(ni, oracle_ni, "NI answers diverged from the sequential oracle");
    assert_eq!(ip, oracle_ip, "INDEXPROJ answers diverged from the sequential oracle");

    let snap = d.registry.snapshot();
    assert!(snap.counter("serve.conns_accepted") >= WRITERS as u64);
    assert!(snap.counter("serve.ingest_batches") >= WRITERS as u64);

    cleanup(&d.path);
    cleanup(&opath);
}

#[test]
fn admission_and_deadline_refusals_are_typed() {
    let mut d = daemon("typed", ServeConfig { max_connections: 2, ..ServeConfig::default() });
    let addr = d.addr();
    let _c1 = ServeClient::connect(&addr).unwrap();
    let mut c2 = ServeClient::connect(&addr).unwrap();

    // The third connection is refused with the occupancy attached.
    match ServeClient::connect(&addr) {
        Err(ServeError::Busy { active, limit }) => {
            assert_eq!((active, limit), (2, 2));
        }
        other => panic!("expected typed busy refusal, got {other:?}"),
    }

    // An already-expired deadline is a typed timeout, not a hang.
    let req = p::ServeQuery {
        query: "lin(<2TO1_FINAL:Y[0,1]>, {LISTGEN_1})".into(),
        run: 0,
        all_runs: false,
        algo: "ni".into(),
        wf: None,
        deadline_ms: Some(0),
    };
    match c2.query(&req) {
        Err(ServeError::Timeout { .. }) => {}
        other => panic!("expected typed timeout, got {other:?}"),
    }

    let snap = d.registry.snapshot();
    assert!(snap.counter("serve.conns_refused") >= 1, "refusal not counted");
    assert!(snap.counter("serve.request_timeouts") >= 1, "timeout not counted");

    d.shutdown();
    cleanup(&d.path);
}

#[test]
fn drain_mid_load_keeps_every_acked_batch_durable() {
    const WRITERS: usize = 3;
    let df = testbed::generate(3);
    let wf_json = serde_json::to_string(&df).unwrap();
    let mut d = daemon(
        "drain",
        ServeConfig { queue_depth: 2, drain_deadline_ms: 30_000, ..ServeConfig::default() },
    );
    let addr = d.addr();

    // Writers loop streaming runs until the drain turns them away; each
    // reports the highest durable-frame ack it ever saw.
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let (addr, wf, df) = (addr.clone(), wf_json.clone(), df.clone());
            std::thread::spawn(move || {
                let mut max_acked = 0u64;
                // Refusals racing the drain are typed or plain socket
                // deaths — the first error ends this writer.
                while let Ok(frames) = stream_run(&addr, &wf, &df) {
                    max_acked = max_acked.max(frames);
                }
                max_acked
            })
        })
        .collect();

    // Let the storm build, then pull the SIGTERM lever mid-load
    // (`begin_drain` is exactly what the signal handler path calls).
    std::thread::sleep(Duration::from_millis(100));
    d.begin_drain();

    let max_acked = writers.into_iter().map(|h| h.join().unwrap()).max().unwrap();
    let report = d.shutdown();
    assert!(!report.forced, "sessions must finish within the drain deadline");
    assert!(max_acked > 0, "the storm never landed a single acked run");

    // Acked ⇒ durable, and whatever finished answers NI ≡ INDEXPROJ.
    let (_store, runs) = check_reopened(&d.path, &df, records_per_run(&df));
    assert!(!runs.is_empty(), "no finished run survived the drain");
    cleanup(&d.path);
}

/// Splitmix64 — deterministic offsets for the seeded pass.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn seeded_cut_streams_never_corrupt_the_daemon() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    eprintln!("serve-torture seed: {seed} (replay with CRASH_TORTURE_SEED={seed})");
    let df = testbed::generate(3);
    let wf_json = serde_json::to_string(&df).unwrap();
    let mut d = daemon("seeded", ServeConfig::default());
    let addr = d.addr();

    let mut rng = Rng(seed);
    for case in 0..10 {
        let plan = if case % 2 == 0 {
            FaultPlan::short_read(1 + rng.next() % 4096)
        } else {
            FaultPlan::fail_read(1 + rng.next() % 8)
        };
        cut_stream_writer(&addr, plan);
    }

    // After the carnage, a clean writer still streams a full run and the
    // daemon still answers; then everything drains and reopens clean.
    let acked = stream_run(&addr, &wf_json, &df).expect("clean writer after cut streams");
    assert!(acked > 0);
    let report = d.shutdown();
    assert!(!report.forced);
    let (_store, runs) = check_reopened(&d.path, &df, records_per_run(&df));
    assert!(!runs.is_empty(), "the clean run did not survive");
    cleanup(&d.path);
}
