//! Hot-path overhaul, end to end: batched ingest must be observationally
//! equivalent to event-at-a-time ingest through the whole pipeline, run
//! scans must stay proportional to the run (not the heap), plan caching
//! must absorb repeated queries, and multi-run fan-out must answer
//! exactly like a sequential sweep.

use std::sync::Mutex;

use proptest::prelude::*;
use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_workgen::testbed;
use taverna_prov::prelude::*;

/// Forwards every event of a batch individually — the pre-overhaul ingest
/// shape, used as the reference side of the equivalence tests.
struct Unbatched<'a>(&'a TraceStore);

impl TraceSink for Unbatched<'_> {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        self.0.begin_run(workflow)
    }
    fn record_xform(&self, run: RunId, event: XformEvent) {
        self.0.record_xform(run, event);
    }
    fn record_xfer(&self, run: RunId, event: XferEvent) {
        self.0.record_xfer(run, event);
    }
    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        for event in events {
            match event {
                TraceEvent::Xform(e) => self.0.record_xform(run, e),
                TraceEvent::Xfer(e) => self.0.record_xfer(run, e),
            }
        }
    }
    fn finish_run(&self, run: RunId) {
        self.0.finish_run(run);
    }
}

#[test]
fn batched_ingest_answers_queries_identically_to_event_at_a_time() {
    let df = testbed::generate(6);

    // Same testbed run, once with the engine's natural batches going
    // straight into the store, once unbatched event by event.
    let batched_store = TraceStore::in_memory();
    let batched_run = testbed::run(&df, 4, &batched_store).run_id;
    let unbatched_store = TraceStore::in_memory();
    let unbatched_run = testbed::run(&df, 4, &Unbatched(&unbatched_store)).run_id;

    assert_eq!(
        batched_store.trace_record_count(batched_run),
        unbatched_store.trace_record_count(unbatched_run)
    );

    for idx in [[0u32, 0], [1, 3], [3, 2]] {
        let q = testbed::focused_query(&idx);

        let ni_b = NaiveLineage::new().run(&batched_store, batched_run, &q).unwrap();
        let ni_u = NaiveLineage::new().run(&unbatched_store, unbatched_run, &q).unwrap();
        assert!(ni_b.same_bindings(&ni_u), "NI answers diverge at {idx:?}");

        let before_b = batched_store.stats().snapshot();
        let ip_b = IndexProj::new(&df).run(&batched_store, batched_run, &q).unwrap();
        let work_b = batched_store.stats().snapshot().since(before_b);
        let before_u = unbatched_store.stats().snapshot();
        let ip_u = IndexProj::new(&df).run(&unbatched_store, unbatched_run, &q).unwrap();
        let work_u = unbatched_store.stats().snapshot().since(before_u);

        assert!(ip_b.same_bindings(&ip_u), "INDEXPROJ answers diverge at {idx:?}");
        assert!(ni_b.same_bindings(&ip_b), "NI and INDEXPROJ diverge at {idx:?}");
        // Identical contents must cost identical trace access work.
        assert_eq!(work_b, work_u, "stats diverge at {idx:?}");
    }
}

#[test]
fn run_scans_touch_only_the_requested_runs_rows() {
    // A small run interleaved (in store insertion order) with a much
    // larger one: scanning the small run must not pay for the big one.
    let df = testbed::generate(2);
    let store = TraceStore::in_memory();
    let small = testbed::run(&df, 2, &store).run_id;
    let big = testbed::run(&df, 12, &store).run_id;

    store.stats().reset();
    let small_rows = store.xforms_of_run(small).len() + store.xfers_of_run(small).len();
    let work = store.stats().snapshot();
    assert_eq!(small_rows as u64, store.trace_record_count(small));
    assert_eq!(
        work.rows_scanned, small_rows as u64,
        "scan of the small run examined rows outside its spans"
    );
    assert!(store.trace_record_count(big) > 4 * small_rows as u64);
}

#[test]
fn plan_cache_absorbs_repeated_fig4_queries() {
    let df = testbed::generate(4);
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, 3, &store).run_id;

    let cache = PlanCache::new(IndexProj::new(&df));
    let q = testbed::focused_query(&[1, 2]);
    let first = cache.run(&store, run, &q).unwrap();
    for _ in 0..9 {
        let again = cache.run(&store, run, &q).unwrap();
        assert!(again.same_bindings(&first));
    }
    let PlanCacheStats { hits, misses } = cache.stats();
    assert_eq!((hits, misses), (9, 1));
    assert_eq!(cache.len(), 1);
}

#[test]
fn multi_run_fanout_matches_sequential_execution() {
    let df = testbed::generate(4);
    let store = TraceStore::in_memory();
    // Enough runs to cross the parallel fan-out threshold.
    let runs: Vec<RunId> = (0..6).map(|_| testbed::run(&df, 3, &store).run_id).collect();

    let q = testbed::focused_query(&[1, 1]);
    let plan = IndexProj::new(&df).plan(&q).unwrap();

    let sequential: Vec<LineageAnswer> =
        runs.iter().map(|&r| plan.execute(&store, r).unwrap()).collect();
    let fanned = plan.execute_multi(&store, &runs).unwrap();

    assert_eq!(sequential.len(), fanned.len());
    for (s, f) in sequential.iter().zip(&fanned) {
        assert!(s.same_bindings(f), "parallel multi-run answer diverges");
    }
}

/// Captures the engine's natural ingest batches so a test can replay them
/// by hand (e.g. pause halfway to pin a mid-ingest snapshot).
#[derive(Default)]
struct BatchCapture {
    next: Mutex<u64>,
    batches: Mutex<Vec<Vec<TraceEvent>>>,
}

impl TraceSink for BatchCapture {
    fn begin_run(&self, _workflow: &ProcessorName) -> RunId {
        let mut next = self.next.lock().unwrap();
        let id = RunId(*next);
        *next += 1;
        id
    }
    fn record_xform(&self, _run: RunId, event: XformEvent) {
        self.batches.lock().unwrap().push(vec![TraceEvent::Xform(event)]);
    }
    fn record_xfer(&self, _run: RunId, event: XferEvent) {
        self.batches.lock().unwrap().push(vec![TraceEvent::Xfer(event)]);
    }
    fn record_batch(&self, _run: RunId, events: Vec<TraceEvent>) {
        self.batches.lock().unwrap().push(events);
    }
    fn finish_run(&self, _run: RunId) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharded store is observationally equivalent to the reference
    /// (event-at-a-time) ingest across the testbed parameter space: both
    /// algorithms return the same bindings and — because every probe
    /// batches its [`prov_store::ProbeStats`] into the same counters a
    /// monolithic store would charge — identical access-statistics deltas,
    /// for focused and unfocused (step-fanning) queries alike.
    #[test]
    fn sharded_store_matches_reference_answers_and_stats(
        l in 2usize..6, d in 2usize..5, a in 0u32..8, b in 0u32..8,
    ) {
        let df = testbed::generate(l);
        let sharded_store = TraceStore::in_memory();
        let sharded_run = testbed::run(&df, d, &sharded_store).run_id;
        let reference_store = TraceStore::in_memory();
        let reference_run = testbed::run(&df, d, &Unbatched(&reference_store)).run_id;

        let idx = [a % d as u32, b % d as u32];
        for q in [testbed::focused_query(&idx), testbed::unfocused_query(&df, &idx)] {
            let before = sharded_store.stats().snapshot();
            let ni_s = NaiveLineage::new().run(&sharded_store, sharded_run, &q).unwrap();
            let ni_work_s = sharded_store.stats().snapshot().since(before);
            let before = reference_store.stats().snapshot();
            let ni_r = NaiveLineage::new().run(&reference_store, reference_run, &q).unwrap();
            let ni_work_r = reference_store.stats().snapshot().since(before);
            prop_assert!(ni_s.same_bindings(&ni_r), "NI answers diverge at {idx:?}");
            prop_assert_eq!(ni_work_s, ni_work_r, "NI stats diverge at {:?}", idx);

            let before = sharded_store.stats().snapshot();
            let ip_s = IndexProj::new(&df).run(&sharded_store, sharded_run, &q).unwrap();
            let ip_work_s = sharded_store.stats().snapshot().since(before);
            let before = reference_store.stats().snapshot();
            let ip_r = IndexProj::new(&df).run(&reference_store, reference_run, &q).unwrap();
            let ip_work_r = reference_store.stats().snapshot().since(before);
            prop_assert!(ip_s.same_bindings(&ip_r), "INDEXPROJ answers diverge at {idx:?}");
            prop_assert!(ni_s.same_bindings(&ip_s), "NI and INDEXPROJ diverge at {idx:?}");
            prop_assert_eq!(ip_work_s, ip_work_r, "INDEXPROJ stats diverge at {:?}", idx);
        }
    }

    /// A `ReadView` pinned mid-ingest is a stable snapshot: recording the
    /// rest of the run does not leak into it, and both algorithms answer
    /// through it exactly as against a store that stopped ingesting at the
    /// pin.
    #[test]
    fn pinned_view_is_a_stable_snapshot_during_later_ingest(
        l in 2usize..6, d in 2usize..5,
    ) {
        let df = testbed::generate(l);
        let capture = BatchCapture::default();
        testbed::run(&df, d, &capture);
        let batches = capture.batches.into_inner().unwrap();
        let half = batches.len() / 2;

        let store = TraceStore::in_memory();
        let run = store.begin_run(&df.name);
        for batch in &batches[..half] {
            store.record_batch(run, batch.clone());
        }
        let view = store.pin(run);
        let frozen = view.trace_record_count();
        for batch in &batches[half..] {
            store.record_batch(run, batch.clone());
        }
        prop_assert_eq!(view.trace_record_count(), frozen, "pinned view saw later ingest");
        prop_assert!(store.trace_record_count(run) > frozen);

        // A store that only ever ingested the first wave is the ground
        // truth for what the pinned view must answer.
        let reference = TraceStore::in_memory();
        let ref_run = reference.begin_run(&df.name);
        for batch in &batches[..half] {
            reference.record_batch(ref_run, batch.clone());
        }

        let q = testbed::focused_query(&[0, d as u32 - 1]);
        let plan = IndexProj::new(&df).plan(&q).unwrap();
        let ip_view = plan.execute_pinned(&view, &Obs::disabled()).unwrap();
        let ip_ref = plan.execute(&reference, ref_run).unwrap();
        prop_assert!(ip_view.same_bindings(&ip_ref), "INDEXPROJ through pinned view diverged");

        let ni_view = NaiveLineage::new().run_pinned(&view, &q, &Obs::disabled()).unwrap();
        let ni_ref = NaiveLineage::new().run(&reference, ref_run, &q).unwrap();
        prop_assert!(ni_view.same_bindings(&ni_ref), "NI through pinned view diverged");

        // A fresh pin sees the complete run.
        let full_view = store.pin(run);
        prop_assert_eq!(full_view.trace_record_count(), store.trace_record_count(run));
    }
}
