//! Hot-path overhaul, end to end: batched ingest must be observationally
//! equivalent to event-at-a-time ingest through the whole pipeline, run
//! scans must stay proportional to the run (not the heap), plan caching
//! must absorb repeated queries, and multi-run fan-out must answer
//! exactly like a sequential sweep.

use prov_engine::{TraceEvent, TraceSink, XferEvent, XformEvent};
use prov_workgen::testbed;
use taverna_prov::prelude::*;

/// Forwards every event of a batch individually — the pre-overhaul ingest
/// shape, used as the reference side of the equivalence tests.
struct Unbatched<'a>(&'a TraceStore);

impl TraceSink for Unbatched<'_> {
    fn begin_run(&self, workflow: &ProcessorName) -> RunId {
        self.0.begin_run(workflow)
    }
    fn record_xform(&self, run: RunId, event: XformEvent) {
        self.0.record_xform(run, event);
    }
    fn record_xfer(&self, run: RunId, event: XferEvent) {
        self.0.record_xfer(run, event);
    }
    fn record_batch(&self, run: RunId, events: Vec<TraceEvent>) {
        for event in events {
            match event {
                TraceEvent::Xform(e) => self.0.record_xform(run, e),
                TraceEvent::Xfer(e) => self.0.record_xfer(run, e),
            }
        }
    }
    fn finish_run(&self, run: RunId) {
        self.0.finish_run(run);
    }
}

#[test]
fn batched_ingest_answers_queries_identically_to_event_at_a_time() {
    let df = testbed::generate(6);

    // Same testbed run, once with the engine's natural batches going
    // straight into the store, once unbatched event by event.
    let batched_store = TraceStore::in_memory();
    let batched_run = testbed::run(&df, 4, &batched_store).run_id;
    let unbatched_store = TraceStore::in_memory();
    let unbatched_run = testbed::run(&df, 4, &Unbatched(&unbatched_store)).run_id;

    assert_eq!(
        batched_store.trace_record_count(batched_run),
        unbatched_store.trace_record_count(unbatched_run)
    );

    for idx in [[0u32, 0], [1, 3], [3, 2]] {
        let q = testbed::focused_query(&idx);

        let ni_b = NaiveLineage::new().run(&batched_store, batched_run, &q).unwrap();
        let ni_u = NaiveLineage::new().run(&unbatched_store, unbatched_run, &q).unwrap();
        assert!(ni_b.same_bindings(&ni_u), "NI answers diverge at {idx:?}");

        let before_b = batched_store.stats().snapshot();
        let ip_b = IndexProj::new(&df).run(&batched_store, batched_run, &q).unwrap();
        let work_b = batched_store.stats().snapshot().since(before_b);
        let before_u = unbatched_store.stats().snapshot();
        let ip_u = IndexProj::new(&df).run(&unbatched_store, unbatched_run, &q).unwrap();
        let work_u = unbatched_store.stats().snapshot().since(before_u);

        assert!(ip_b.same_bindings(&ip_u), "INDEXPROJ answers diverge at {idx:?}");
        assert!(ni_b.same_bindings(&ip_b), "NI and INDEXPROJ diverge at {idx:?}");
        // Identical contents must cost identical trace access work.
        assert_eq!(work_b, work_u, "stats diverge at {idx:?}");
    }
}

#[test]
fn run_scans_touch_only_the_requested_runs_rows() {
    // A small run interleaved (in store insertion order) with a much
    // larger one: scanning the small run must not pay for the big one.
    let df = testbed::generate(2);
    let store = TraceStore::in_memory();
    let small = testbed::run(&df, 2, &store).run_id;
    let big = testbed::run(&df, 12, &store).run_id;

    store.stats().reset();
    let small_rows = store.xforms_of_run(small).len() + store.xfers_of_run(small).len();
    let work = store.stats().snapshot();
    assert_eq!(small_rows as u64, store.trace_record_count(small));
    assert_eq!(
        work.rows_scanned, small_rows as u64,
        "scan of the small run examined rows outside its spans"
    );
    assert!(store.trace_record_count(big) > 4 * small_rows as u64);
}

#[test]
fn plan_cache_absorbs_repeated_fig4_queries() {
    let df = testbed::generate(4);
    let store = TraceStore::in_memory();
    let run = testbed::run(&df, 3, &store).run_id;

    let cache = PlanCache::new(IndexProj::new(&df));
    let q = testbed::focused_query(&[1, 2]);
    let first = cache.run(&store, run, &q).unwrap();
    for _ in 0..9 {
        let again = cache.run(&store, run, &q).unwrap();
        assert!(again.same_bindings(&first));
    }
    let PlanCacheStats { hits, misses } = cache.stats();
    assert_eq!((hits, misses), (9, 1));
    assert_eq!(cache.len(), 1);
}

#[test]
fn multi_run_fanout_matches_sequential_execution() {
    let df = testbed::generate(4);
    let store = TraceStore::in_memory();
    // Enough runs to cross the parallel fan-out threshold.
    let runs: Vec<RunId> = (0..6).map(|_| testbed::run(&df, 3, &store).run_id).collect();

    let q = testbed::focused_query(&[1, 1]);
    let plan = IndexProj::new(&df).plan(&q).unwrap();

    let sequential: Vec<LineageAnswer> =
        runs.iter().map(|&r| plan.execute(&store, r).unwrap()).collect();
    let fanned = plan.execute_multi(&store, &runs).unwrap();

    assert_eq!(sequential.len(), fanned.len());
    for (s, f) in sequential.iter().zip(&fanned) {
        assert!(s.same_bindings(f), "parallel multi-run answer diverges");
    }
}
