//! Resume torture: crash a run at an arbitrary byte offset of its durable
//! trace — including mid-compaction and mid-snapshot, via the per-handle
//! fault budgets — then reopen the store and `Engine::resume`. The resumed
//! run must be indistinguishable from an uninterrupted one:
//!
//! * bit-identical outputs, status, and failed-invocation accounting;
//! * bit-identical NI **and** INDEXPROJ lineage answers;
//! * recovery bounded by the compaction policy (`recovery_replayed_frames
//!   <= max_frames`).
//!
//! Two drivers share one oracle, mirroring `crash_torture.rs`: a fixed
//! offset sweep and a randomized pass seeded from `CRASH_TORTURE_SEED`
//! (printed, so failures replay).

use std::path::PathBuf;
use std::sync::Arc;

use prov_engine::{Backoff, RetryPolicy, VirtualClock};
use prov_store::{CompactionPolicy, FaultPlan};
use taverna_prov::prelude::*;

const MAX_FRAMES: u64 = 4;

/// The workload: tag each element, pass it through a nested scope, then a
/// flaky processor that exhausts its retries on "bad" elements. Covers
/// iteration, nested-scope qualified names, xfer chains, and error tokens.
fn workflow() -> prov_dataflow::Dataflow {
    let mut inner = DataflowBuilder::new("subwf");
    inner.input("v", PortType::atom(BaseType::String));
    inner
        .processor_with_behavior("Q", "q_tag")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner.arc_from_input("v", "Q", "x").unwrap();
    inner.output("w", PortType::atom(BaseType::String));
    inner.arc_to_output("Q", "y", "w").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut b = DataflowBuilder::new("wf");
    b.input("xs", PortType::list(BaseType::String));
    b.processor_with_behavior("A", "tag")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.arc_from_input("xs", "A", "x").unwrap();
    b.nested("sub", inner);
    b.arc("A", "y", "sub", "v").unwrap();
    b.processor_with_behavior("B", "maybe_fail")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    b.arc("sub", "w", "B", "x").unwrap();
    b.output("ys", PortType::list(BaseType::String));
    b.arc_to_output("B", "y", "ys").unwrap();
    b.build().unwrap()
}

fn registry() -> BehaviorRegistry {
    let mut reg = BehaviorRegistry::new();
    let tag = |inputs: &[Value]| -> Result<Vec<Value>, String> {
        let s = inputs[0].as_atom().and_then(Atom::as_str).ok_or("string expected")?;
        Ok(vec![Value::str(&format!("{s}!"))])
    };
    reg.register_fn("tag", tag);
    reg.register_fn("q_tag", |inputs| {
        let s = inputs[0].as_atom().and_then(Atom::as_str).ok_or("string expected")?;
        Ok(vec![Value::str(&format!("{s}-q"))])
    });
    reg.register_fn("maybe_fail", |inputs| {
        let s = inputs[0].as_atom().and_then(Atom::as_str).ok_or("string expected")?;
        if s.contains("bad") {
            Err(format!("rejected {s:?}"))
        } else {
            Ok(vec![Value::str(&format!("{s}?"))])
        }
    });
    reg
}

fn engine() -> Engine {
    // Deterministic retry with seeded jitter under a virtual clock: the
    // schedule replays identically on resume without real sleeping.
    Engine::new(registry()).with_clock(Arc::new(VirtualClock::new())).with_retry_for(
        "B",
        RetryPolicy::attempts(2).with_backoff(Backoff::Fixed { micros: 50 }).with_jitter(0xDECAF),
    )
}

fn inputs() -> Vec<(String, Value)> {
    vec![("xs".into(), Value::from(vec!["ok-0", "bad-1", "ok-2", "ok-3", "bad-4"]))]
}

fn queries() -> Vec<LineageQuery> {
    let mut qs = Vec::new();
    for i in 0..5u32 {
        // Full-depth lineage of each workflow output element, focused on
        // every recording scope, including the nested one.
        qs.push(LineageQuery::focused(
            PortRef::new("wf", "ys"),
            Index::single(i),
            [
                ProcessorName::from("wf"),
                ProcessorName::from("A"),
                ProcessorName::from("sub/Q"),
                ProcessorName::from("B"),
            ],
        ));
    }
    qs
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("prov-resume-torture");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

/// Removes a case's WAL and any snapshot generations beside it.
fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    if let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&format!("{name}.snap.")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// The uninterrupted run every crashed case must be indistinguishable
/// from: outcome, lineage answers (both algorithms), and the cumulative
/// WAL bytes the workload writes (scales crash offsets).
struct Reference {
    df: prov_dataflow::Dataflow,
    outcome: RunOutcome,
    ni: Vec<LineageAnswer>,
    ip: Vec<LineageAnswer>,
    wal_bytes: u64,
    records: u64,
}

fn reference() -> Reference {
    let df = workflow();
    let path = tmp("reference");
    let store = TraceStore::open(&path).unwrap();
    store.set_compaction_policy(Some(CompactionPolicy::frames(MAX_FRAMES)));
    let outcome = engine().execute(&df, inputs(), &store).unwrap();
    store.durability().unwrap();
    assert!(
        store.wal_metrics().compactions.get() > 0,
        "the workload must be big enough to compact at least once"
    );
    let (ni, ip) = answers(&df, &store, outcome.run_id);
    let wal_bytes = store.wal_metrics().bytes_written.get();
    let records = store.trace_record_count(outcome.run_id);
    drop(store);
    cleanup(&path);
    Reference { df, outcome, ni, ip, wal_bytes, records }
}

fn answers(
    df: &prov_dataflow::Dataflow,
    store: &TraceStore,
    run: RunId,
) -> (Vec<LineageAnswer>, Vec<LineageAnswer>) {
    let ni: Vec<LineageAnswer> =
        queries().iter().map(|q| NaiveLineage::new().run(store, run, q).unwrap()).collect();
    let ip: Vec<LineageAnswer> =
        queries().iter().map(|q| IndexProj::new(df).run(store, run, q).unwrap()).collect();
    (ni, ip)
}

/// The oracle: run under a fault plan, "crash" (drop the store), reopen,
/// resume, and compare everything against the uninterrupted reference.
fn torture_case(reference: &Reference, tag: &str, plan: FaultPlan) {
    let path = tmp(tag);

    // Crashed attempt. The engine itself always finishes (durability
    // failures poison the store, they don't abort execution) — the crash
    // is simulated by dropping the store, leaving only the durable prefix.
    {
        match TraceStore::open_with_fault(&path, plan) {
            Ok(store) => {
                store.set_compaction_policy(Some(CompactionPolicy::frames(MAX_FRAMES)));
                let _ = engine().execute(&reference.df, inputs(), &store);
            }
            Err(_) => {
                // The budget tripped before the store finished opening:
                // equivalent to a crash before the first write.
            }
        }
    }

    // Reopen healthy and resume (or start fresh when not even BeginRun
    // survived — the trace then has no run 0 to pick up).
    let store = TraceStore::open(&path).unwrap();
    assert!(
        store.wal_metrics().recovery_replayed_frames.get() <= MAX_FRAMES,
        "{tag}: recovery replayed {} frames, policy allows {MAX_FRAMES}",
        store.wal_metrics().recovery_replayed_frames.get()
    );
    let run0 = store.runs().iter().any(|i| i.id == RunId(0));
    let outcome = if run0 {
        engine().resume(&reference.df, inputs(), &store, RunId(0)).unwrap()
    } else {
        engine().execute(&reference.df, inputs(), &store).unwrap()
    };
    store.durability().unwrap();

    // Bit-identical outcome: outputs, status, failure accounting, run id.
    assert_eq!(outcome, reference.outcome, "{tag}: resumed outcome diverged");

    // Exactly the reference's rows: nothing lost, and — because resume
    // suppresses already-durable xform/xfer records — nothing duplicated.
    assert_eq!(
        store.trace_record_count(outcome.run_id),
        reference.records,
        "{tag}: resumed trace row count diverged"
    );

    // Bit-identical lineage answers, both algorithms.
    let (ni, ip) = answers(&reference.df, &store, outcome.run_id);
    assert_eq!(ni, reference.ni, "{tag}: NI answers diverged");
    assert_eq!(ip, reference.ip, "{tag}: INDEXPROJ answers diverged");

    // And the resumed trace is internally consistent.
    assert!(prov_core::audit_run(&reference.df, &store, outcome.run_id).unwrap().is_clean());

    drop(store);
    cleanup(&path);
}

#[test]
fn fixed_crash_offsets_resume_bit_identically() {
    let r = reference();
    let total = r.wal_bytes;
    assert!(total > 64, "workload too small to be interesting");
    // Fault budgets are per file handle, so one offset exercises different
    // phases on different handles: small ones tear the first WAL handle,
    // mid-range ones crash snapshot writes or post-compaction WAL tails,
    // and out-of-range ones never fire (a finished run is resumed as-is).
    let offsets =
        [0, 1, 7, 13, total / 4, total / 2, (total * 3) / 4, total - 1, total, total + 64];
    for (i, &offset) in offsets.iter().enumerate() {
        torture_case(&r, &format!("fixed-{i}-{offset}"), FaultPlan::crash_at(offset));
    }
    // A failed fsync poisons the writer without tearing bytes: everything
    // flushed is durable, nothing was confirmed — resume must still agree.
    torture_case(&r, "fsync", FaultPlan::fail_sync(1));
}

/// Splitmix64 — deterministic offsets for the seeded pass.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn seeded_crash_offsets_resume_bit_identically() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    eprintln!("resume-torture seed: {seed} (replay with CRASH_TORTURE_SEED={seed})");
    let r = reference();
    let mut rng = Rng(seed);
    for case in 0..8 {
        let offset = rng.next() % (r.wal_bytes + 65);
        torture_case(&r, &format!("seed-{case}-{offset}"), FaultPlan::crash_at(offset));
    }
}
