//! Scenario tests pinned to the paper's own worked examples: the Fig. 1
//! workflow story, the Fig. 2 partial trace, the Fig. 3 abstract workflow,
//! and the evaluation's structural claims.

use std::sync::Arc;

use prov_workgen::bio::{self, KeggDb};
use prov_workgen::testbed;
use taverna_prov::prelude::*;

#[test]
fn fig1_story_why_is_this_pathway_in_the_output() {
    // "which of the input lists of genes is involved in this pathway?"
    let wf = bio::genes2kegg_workflow();
    let db = Arc::new(KeggDb::small(7));
    let store = TraceStore::in_memory();
    let input = Value::from(vec![vec!["mmu:20816", "mmu:26416"], vec!["mmu:328788"]]);
    let outcome = bio::run_genes2kegg(&wf, db, input, &store);

    // paths_per_gene has one sub-list per input gene list.
    let per = outcome.output("paths_per_gene").unwrap();
    assert_eq!(per.len(), 2);

    // lin(paths_per_gene[1]) = [mmu:328788] — the second gene list only.
    let q = LineageQuery::focused(
        PortRef::new("genes2Kegg", "paths_per_gene"),
        Index::single(1),
        [ProcessorName::from("genes2Kegg")],
    );
    let ans = IndexProj::new(&wf).run(&store, outcome.run_id, &q).unwrap();
    let genes: Vec<&Value> = ans
        .bindings
        .iter()
        .filter(|b| b.port == PortRef::new("genes2Kegg", "list_of_geneIDList"))
        .map(|b| &b.value)
        .collect();
    assert_eq!(genes, vec![&Value::str("mmu:328788")]);

    // While every pathway in commonPathways depends on ALL input genes.
    let q = LineageQuery::focused(
        PortRef::new("genes2Kegg", "commonPathways"),
        Index::single(0),
        [ProcessorName::from("genes2Kegg")],
    );
    let ans = IndexProj::new(&wf).run(&store, outcome.run_id, &q).unwrap();
    assert_eq!(ans.bindings.len(), 3); // all three genes
}

#[test]
fn fig2_trace_events_have_matching_indices_per_branch_stage() {
    // Fig. 2 shows: genes_id_list[i] → return[i] for both left-branch
    // processors, and return[i] → workflow:paths_per_gene[i].
    let wf = bio::genes2kegg_workflow();
    let db = Arc::new(KeggDb::small(7));
    let store = TraceStore::in_memory();
    let input = bio::sample_gene_lists(2, 2, 1);
    let run = bio::run_genes2kegg(&wf, db, input, &store).run_id;

    for proc in ["get_pathways_by_genes", "getPathwayDescriptions"] {
        let recs =
            store.xforms_producing(run, &ProcessorName::from(proc), "return", &Index::empty());
        assert_eq!(recs.len(), 2, "{proc} iterates once per sub-list");
        for rec in recs {
            let input_idx = &rec.inputs().next().unwrap().index;
            let output_idx = &rec.outputs().next().unwrap().index;
            assert_eq!(input_idx, output_idx, "one-to-one iteration: same index");
            assert_eq!(input_idx.len(), 1);
        }
    }

    // Transfers into the workflow output preserve the sub-list indices.
    let xfers = store.xfers_into(
        run,
        &ProcessorName::from("genes2Kegg"),
        "paths_per_gene",
        &Index::empty(),
    );
    assert!(!xfers.is_empty());
    for x in xfers {
        assert_eq!(x.src_index, x.dst_index);
        assert_eq!(x.src_processor, ProcessorName::from("getPathwayDescriptions"));
    }
}

#[test]
fn fig3_trace_has_n_by_m_events_for_the_cross_product() {
    // Fig. 3: P consumes one element of a, the whole of c, one element of
    // b — |a|·|b| xform events, with q = p1 · p3.
    let mut b = DataflowBuilder::new("wf");
    b.input("v", PortType::list(BaseType::String));
    b.input("w", PortType::atom(BaseType::String));
    b.input("c", PortType::list(BaseType::String));
    b.processor("Q")
        .in_port("X", PortType::atom(BaseType::String))
        .out_port("Y", PortType::atom(BaseType::String));
    b.processor("R")
        .in_port("X", PortType::atom(BaseType::String))
        .out_port("Y", PortType::list(BaseType::String));
    b.processor("P")
        .in_port("X1", PortType::atom(BaseType::String))
        .in_port("X2", PortType::list(BaseType::String))
        .in_port("X3", PortType::atom(BaseType::String))
        .out_port("Y", PortType::atom(BaseType::String));
    b.arc_from_input("v", "Q", "X").unwrap();
    b.arc_from_input("w", "R", "X").unwrap();
    b.arc_from_input("c", "P", "X2").unwrap();
    b.arc("Q", "Y", "P", "X1").unwrap();
    b.arc("R", "Y", "P", "X3").unwrap();
    b.output("y", PortType::nested(BaseType::String, 2));
    b.arc_to_output("P", "Y", "y").unwrap();
    let wf = b.build().unwrap();

    let mut reg = BehaviorRegistry::new();
    reg.register_fn("Q", |i| Ok(vec![i[0].clone()]));
    reg.register_fn("R", |_| {
        Ok(vec![Value::from(vec!["b1", "b2", "b3"])]) // |b| = m = 3
    });
    reg.register_fn("P", |i| {
        let a = i[0].as_atom().and_then(Atom::as_str).unwrap_or("?");
        let b = i[2].as_atom().and_then(Atom::as_str).unwrap_or("?");
        Ok(vec![Value::str(&format!("{a}|{b}"))])
    });

    let store = TraceStore::in_memory();
    let run = Engine::new(reg)
        .execute(
            &wf,
            vec![
                ("v".into(), Value::from(vec!["a1", "a2"])), // |a| = n = 2
                ("w".into(), Value::str("w")),
                ("c".into(), Value::from(vec!["c1", "c2"])),
            ],
            &store,
        )
        .unwrap()
        .run_id;

    let p_events = store.xforms_producing(run, &ProcessorName::from("P"), "Y", &Index::empty());
    assert_eq!(p_events.len(), 2 * 3); // n · m
    for rec in &p_events {
        let x1 = rec.input("X1").unwrap();
        let x2 = rec.input("X2").unwrap();
        let x3 = rec.input("X3").unwrap();
        let y = rec.output("Y").unwrap();
        assert_eq!(x1.index.len(), 1);
        assert!(x2.index.is_empty(), "X2 consumes the whole of c");
        assert_eq!(x3.index.len(), 1);
        assert_eq!(x1.index.concat(&x3.index), y.index, "q = p1 · p3");
    }

    // R's single event consumed w whole: ⟨R:X[], w⟩ → ⟨R:Y[], b⟩.
    let r_events = store.xforms_producing(run, &ProcessorName::from("R"), "Y", &Index::empty());
    assert_eq!(r_events.len(), 1);
    assert!(r_events[0].inputs().next().unwrap().index.is_empty());
}

#[test]
fn evaluation_shape_ni_grows_with_l_indexproj_does_not() {
    // The structural claim behind Fig. 9, asserted on machine-independent
    // record-access counts rather than wall time.
    let d = 10usize;
    let mut ni_reads = Vec::new();
    let mut ip_reads = Vec::new();
    for l in [10usize, 40] {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let query = testbed::focused_query(&[3, 4]);

        let before = store.stats().snapshot();
        NaiveLineage::new().run(&store, run, &query).unwrap();
        ni_reads.push(store.stats().snapshot().since(before).records_read);

        let before = store.stats().snapshot();
        IndexProj::new(&df).run(&store, run, &query).unwrap();
        ip_reads.push(store.stats().snapshot().since(before).records_read);
    }
    assert!(ni_reads[1] > ni_reads[0] * 3, "NI reads grow with l: {ni_reads:?}");
    assert_eq!(ip_reads[0], ip_reads[1], "INDEXPROJ reads constant in l: {ip_reads:?}");
}

#[test]
fn evaluation_shape_trace_size_matches_paper_growth_law() {
    // Table 1's structure: records ≈ a·l·d + b·d² + c. Fit on three cells
    // and predict a fourth.
    let count = |l: usize, d: usize| {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        store.trace_record_count(run) as f64
    };
    let f_10_10 = count(10, 10);
    let f_20_10 = count(20, 10);
    let f_10_20 = count(10, 20);
    let f_20_20 = count(20, 20);
    // Linear-in-l at fixed d: the l-increment is the same at d=10.
    let dl = f_20_10 - f_10_10;
    // Predict (20,20) from the growth law: base + l-term scales with d,
    // plus the d² final-product term.
    let predicted = f_10_20 + dl * 2.0;
    assert!(
        (predicted - f_20_20).abs() / f_20_20 < 0.05,
        "growth law violated: predicted {predicted}, got {f_20_20}"
    );
}
