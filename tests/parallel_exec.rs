//! Parallel execution end-to-end: the trace recorded under the parallel
//! scheduler must answer lineage queries identically to the sequential
//! one (schedule independence of provenance, §2.1's pure dataflow model).
//! Plus: observability is fan-out-invariant — metrics and span totals
//! aggregated across `par.rs` scoped-thread fan-out equal the sequential
//! totals.

use std::collections::BTreeMap;

use proptest::prelude::*;
use prov_engine::ExecutionMode;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

#[test]
fn parallel_testbed_run_supports_identical_lineage_answers() {
    let df = testbed::generate(10);

    let seq_store = TraceStore::in_memory();
    let seq = Engine::new(testbed::registry())
        .execute(&df, vec![("ListSize".into(), Value::int(6))], &seq_store)
        .unwrap();

    let par_store = TraceStore::in_memory();
    let par = Engine::new(testbed::registry())
        .with_mode(ExecutionMode::Parallel)
        .execute(&df, vec![("ListSize".into(), Value::int(6))], &par_store)
        .unwrap();

    assert_eq!(seq.outputs, par.outputs);
    assert_eq!(seq_store.trace_record_count(seq.run_id), par_store.trace_record_count(par.run_id));

    // Same lineage answers from both traces, via both algorithms.
    for idx in [[0u32, 0], [3, 5], [5, 2]] {
        let q = testbed::focused_query(&idx);
        let a = IndexProj::new(&df).run(&seq_store, seq.run_id, &q).unwrap();
        let b = IndexProj::new(&df).run(&par_store, par.run_id, &q).unwrap();
        assert!(a.same_bindings(&b), "indexproj diverged at {idx:?}");
        let a = NaiveLineage::new().run(&seq_store, seq.run_id, &q).unwrap();
        let b = NaiveLineage::new().run(&par_store, par.run_id, &q).unwrap();
        assert!(a.same_bindings(&b), "ni diverged at {idx:?}");
    }

    // Parallel traces audit clean too.
    assert!(prov_core::audit_run(&df, &par_store, par.run_id).unwrap().is_clean());
}

#[test]
fn parallel_mode_handles_nested_workflows() {
    use std::sync::Arc;
    let mut inner = DataflowBuilder::new("inner");
    inner.input("a", PortType::atom(BaseType::String));
    inner
        .processor_with_behavior("T", "string_upper")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner.arc_from_input("a", "T", "x").unwrap();
    inner.output("b", PortType::atom(BaseType::String));
    inner.arc_to_output("T", "y", "b").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut outer = DataflowBuilder::new("outer");
    outer.input("xs", PortType::list(BaseType::String));
    outer.nested("sub", inner);
    outer.arc_from_input("xs", "sub", "a").unwrap();
    outer.output("ys", PortType::list(BaseType::String));
    outer.arc_to_output("sub", "b", "ys").unwrap();
    let df = outer.build().unwrap();

    let store = TraceStore::in_memory();
    let run = Engine::new(BehaviorRegistry::new().with_builtins())
        .with_mode(ExecutionMode::Parallel)
        .execute(&df, vec![("xs".into(), Value::from(vec!["a", "b", "c"]))], &store)
        .unwrap();
    assert_eq!(run.output("ys"), Some(&Value::from(vec!["A", "B", "C"])));

    let q = LineageQuery::focused(
        PortRef::new("outer", "ys"),
        Index::single(2),
        [ProcessorName::from("outer")],
    );
    let ni = NaiveLineage::new().run(&store, run.run_id, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run.run_id, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    assert_eq!(ni.bindings.len(), 1);
    assert_eq!(ni.bindings[0].value, Value::str("c"));
}

/// Per-span-name `(count, Σ rows-arg)` totals of a profiler — the
/// fan-out-invariant view of a recorded timeline (start order and thread
/// assignment legitimately differ across schedules).
fn span_totals(profiler: &Profiler) -> BTreeMap<String, (u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in profiler.spans() {
        let rows: u64 = s.args.iter().filter(|(k, _)| *k == "rows").map(|(_, v)| *v).sum();
        let e = totals.entry(s.name.to_string()).or_insert((0, 0));
        e.0 += 1;
        e.1 += rows;
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Multi-run fan-out (≥ 4 runs crosses `RUN_FANOUT_MIN`): executing a
    /// shared plan run-by-run under one profiler and fanned-out under
    /// another yields identical answers, identical store-counter deltas,
    /// and identical per-span-name totals — observability does not leak
    /// or lose work across scoped threads.
    #[test]
    fn fanned_multi_run_observability_matches_sequential(
        l in 1usize..6, d in 2usize..5, n in 4usize..8,
    ) {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let runs: Vec<RunId> = (0..n).map(|_| testbed::run(&df, d, &store).run_id).collect();
        let query = testbed::focused_query(&[0, d as u32 - 1]);
        let plan = IndexProj::new(&df).plan(&query).unwrap();

        let seq_obs = Obs::enabled();
        let before = store.stats().snapshot();
        let seq_answers: Vec<_> = runs
            .iter()
            .map(|&r| plan.execute_with(&store, r, &seq_obs).unwrap())
            .collect();
        let seq_work = store.stats().snapshot().since(before);

        let par_obs = Obs::enabled();
        let before = store.stats().snapshot();
        let par_answers = plan.execute_multi_with(&store, &runs, &par_obs).unwrap();
        let par_work = store.stats().snapshot().since(before);

        prop_assert_eq!(seq_answers.len(), par_answers.len());
        for (a, b) in seq_answers.iter().zip(&par_answers) {
            prop_assert!(a.same_bindings(b));
        }
        prop_assert_eq!(seq_work, par_work);
        prop_assert_eq!(span_totals(&seq_obs.profiler), span_totals(&par_obs.profiler));

        // NI's traversal spans are fan-out-invariant the same way.
        let seq_ni = Obs::enabled();
        for &r in &runs {
            NaiveLineage::new().run_with(&store, r, &query, &seq_ni).unwrap();
        }
        let par_ni = Obs::enabled();
        NaiveLineage::new().run_multi_with(&store, &runs, &query, &par_ni).unwrap();
        prop_assert_eq!(span_totals(&seq_ni.profiler), span_totals(&par_ni.profiler));
    }

    /// Step fan-out (an unfocused plan has ≥ 2l steps, crossing
    /// `STEP_FANOUT_MIN` at l ≥ 8): one `indexproj.step` span is recorded
    /// per plan step and their `rows` arguments account for every
    /// returned binding exactly once.
    #[test]
    fn fanned_plan_steps_account_all_rows(l in 8usize..12, d in 2usize..4) {
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let run = testbed::run(&df, d, &store).run_id;
        let query = testbed::unfocused_query(&df, &[0, d as u32 - 1]);

        let obs = Obs::enabled();
        let plan = IndexProj::new(&df).plan_with(&query, &obs).unwrap();
        prop_assert!(plan.steps.len() >= 16, "plan too small to fan out: {}", plan.steps.len());
        let answer = plan.execute_with(&store, run, &obs).unwrap();

        let totals = span_totals(&obs.profiler);
        let (step_count, step_rows) = totals["indexproj.step"];
        prop_assert_eq!(step_count, plan.steps.len() as u64);
        prop_assert_eq!(step_rows, answer.bindings.len() as u64);
        prop_assert_eq!(totals["indexproj.plan"].0, 1);
        prop_assert_eq!(totals["indexproj.assemble"].0, 1);
    }
}
