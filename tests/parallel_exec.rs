//! Parallel execution end-to-end: the trace recorded under the parallel
//! scheduler must answer lineage queries identically to the sequential
//! one (schedule independence of provenance, §2.1's pure dataflow model).

use prov_engine::ExecutionMode;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

#[test]
fn parallel_testbed_run_supports_identical_lineage_answers() {
    let df = testbed::generate(10);

    let seq_store = TraceStore::in_memory();
    let seq = Engine::new(testbed::registry())
        .execute(&df, vec![("ListSize".into(), Value::int(6))], &seq_store)
        .unwrap();

    let par_store = TraceStore::in_memory();
    let par = Engine::new(testbed::registry())
        .with_mode(ExecutionMode::Parallel)
        .execute(&df, vec![("ListSize".into(), Value::int(6))], &par_store)
        .unwrap();

    assert_eq!(seq.outputs, par.outputs);
    assert_eq!(seq_store.trace_record_count(seq.run_id), par_store.trace_record_count(par.run_id));

    // Same lineage answers from both traces, via both algorithms.
    for idx in [[0u32, 0], [3, 5], [5, 2]] {
        let q = testbed::focused_query(&idx);
        let a = IndexProj::new(&df).run(&seq_store, seq.run_id, &q).unwrap();
        let b = IndexProj::new(&df).run(&par_store, par.run_id, &q).unwrap();
        assert!(a.same_bindings(&b), "indexproj diverged at {idx:?}");
        let a = NaiveLineage::new().run(&seq_store, seq.run_id, &q).unwrap();
        let b = NaiveLineage::new().run(&par_store, par.run_id, &q).unwrap();
        assert!(a.same_bindings(&b), "ni diverged at {idx:?}");
    }

    // Parallel traces audit clean too.
    assert!(prov_core::audit_run(&df, &par_store, par.run_id).unwrap().is_clean());
}

#[test]
fn parallel_mode_handles_nested_workflows() {
    use std::sync::Arc;
    let mut inner = DataflowBuilder::new("inner");
    inner.input("a", PortType::atom(BaseType::String));
    inner
        .processor_with_behavior("T", "string_upper")
        .in_port("x", PortType::atom(BaseType::String))
        .out_port("y", PortType::atom(BaseType::String));
    inner.arc_from_input("a", "T", "x").unwrap();
    inner.output("b", PortType::atom(BaseType::String));
    inner.arc_to_output("T", "y", "b").unwrap();
    let inner = Arc::new(inner.build().unwrap());

    let mut outer = DataflowBuilder::new("outer");
    outer.input("xs", PortType::list(BaseType::String));
    outer.nested("sub", inner);
    outer.arc_from_input("xs", "sub", "a").unwrap();
    outer.output("ys", PortType::list(BaseType::String));
    outer.arc_to_output("sub", "b", "ys").unwrap();
    let df = outer.build().unwrap();

    let store = TraceStore::in_memory();
    let run = Engine::new(BehaviorRegistry::new().with_builtins())
        .with_mode(ExecutionMode::Parallel)
        .execute(&df, vec![("xs".into(), Value::from(vec!["a", "b", "c"]))], &store)
        .unwrap();
    assert_eq!(run.output("ys"), Some(&Value::from(vec!["A", "B", "C"])));

    let q = LineageQuery::focused(
        PortRef::new("outer", "ys"),
        Index::single(2),
        [ProcessorName::from("outer")],
    );
    let ni = NaiveLineage::new().run(&store, run.run_id, &q).unwrap();
    let ip = IndexProj::new(&df).run(&store, run.run_id, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    assert_eq!(ni.bindings.len(), 1);
    assert_eq!(ni.bindings[0].value, Value::str("c"));
}
