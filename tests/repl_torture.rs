//! Replication torture: kill and re-sync followers at swept offsets of
//! the shipped WAL stream — mid-frame, mid-bootstrap, mid-resync — and
//! assert every survivor converges to a replica whose NI **and**
//! INDEXPROJ answers are bit-identical to the primary's, with
//! `repl.lag_frames` back at zero.
//!
//! Faults are injected with the store's own [`FaultPlan`] machinery,
//! wrapped around the follower's replication socket (`short_read` tears
//! the stream at an exact byte offset; `fail_read` errors the nth read),
//! and with hard kills (drop the follower, reopen, resume from the
//! recovered durable prefix). Two drivers share the oracle, mirroring
//! the crash/resume torture suites: a fixed offset sweep and a randomized
//! pass seeded from `CRASH_TORTURE_SEED` (printed, so failures replay).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prov_engine::{Backoff, RetryPolicy};
use prov_obs::{Journal, JournalEvent};
use prov_repl::{
    query_replica, Follower, FollowerConfig, PrimaryConfig, QueryRequest, ReplError, ReplServer,
};
use prov_store::FaultPlan;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

const CATCH_UP: Duration = Duration::from_secs(30);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("prov-repl-torture");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.wal", std::process::id()));
    cleanup(&path);
    path
}

/// Removes a case's WAL plus every sibling artifact (snapshots, repl
/// sidecar, journal) that hangs off its file name.
fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    if let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with(&format!("{name}.")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

fn queries() -> Vec<LineageQuery> {
    [(0u32, 0u32), (0, 1), (1, 0), (1, 1)]
        .into_iter()
        .map(|(i, j)| {
            LineageQuery::focused(
                PortRef::new("testbed", "product"),
                Index::from(vec![i, j]),
                [ProcessorName::from("LISTGEN_1")],
            )
        })
        .collect()
}

fn answers(
    df: &prov_dataflow::Dataflow,
    store: &TraceStore,
    runs: &[RunId],
) -> (Vec<LineageAnswer>, Vec<LineageAnswer>) {
    let ni: Vec<LineageAnswer> = queries()
        .iter()
        .flat_map(|q| NaiveLineage::new().run_multi(store, runs, q).unwrap())
        .collect();
    let ip: Vec<LineageAnswer> = queries()
        .iter()
        .flat_map(|q| IndexProj::new(df).run_multi(store, runs, q).unwrap())
        .collect();
    (ni, ip)
}

/// A primary with an ingested testbed workload and its reference answers.
struct Primary {
    df: prov_dataflow::Dataflow,
    store: Arc<TraceStore>,
    path: PathBuf,
    runs: Vec<RunId>,
    ni: Vec<LineageAnswer>,
    ip: Vec<LineageAnswer>,
}

/// Builds a primary with `n_runs` testbed runs. With `snapshot_mid`, a
/// snapshot is taken after the first run, so the WAL leads with a marker
/// (fresh followers must bootstrap) and still has live tail frames.
fn primary(tag: &str, n_runs: usize, snapshot_mid: bool) -> Primary {
    let path = tmp(tag);
    let store = TraceStore::open(&path).unwrap();
    let df = testbed::generate(3);
    store.register_workflow(&ProcessorName::from("testbed"), serde_json::to_string(&df).unwrap());
    let mut runs: Vec<RunId> = vec![testbed::run(&df, 3, &store).run_id];
    if snapshot_mid {
        store.snapshot().unwrap();
    }
    runs.extend((1..n_runs).map(|_| testbed::run(&df, 3, &store).run_id));
    store.sync_wal().unwrap();
    store.durability().unwrap();
    let (ni, ip) = answers(&df, &store, &runs);
    Primary { df, store: Arc::new(store), path, runs, ni, ip }
}

fn fast_config(fault: Option<FaultPlan>) -> FollowerConfig {
    FollowerConfig {
        backoff: RetryPolicy::attempts(u32::MAX).with_backoff(Backoff::Fixed { micros: 2_000 }),
        read_fault: fault,
        ..FollowerConfig::default()
    }
}

/// The oracle: a fresh follower under `fault` must heal (the fault hits
/// only its first session), drain the primary, and answer identically.
fn follower_case(p: &Primary, server: &ReplServer, tag: &str, fault: Option<FaultPlan>) {
    let fdb = tmp(&format!("{tag}-f"));
    let journal = Journal::new(1 << 12);
    let follower = Follower::open(&fdb, journal).unwrap();
    let handle = follower.start(server.addr().to_string(), fast_config(fault));

    assert!(
        follower.wait_caught_up(CATCH_UP),
        "{tag}: follower never caught up; status {:?}",
        follower.status()
    );
    let status = follower.status();
    assert_eq!(status.lag_frames, 0, "{tag}: lag_frames");
    assert_eq!(status.lag_bytes, 0, "{tag}: lag_bytes");

    let fstore = follower.store();
    let (ni, ip) = answers(&p.df, &fstore, &p.runs);
    assert_eq!(ni, p.ni, "{tag}: NI answers diverged");
    assert_eq!(ip, p.ip, "{tag}: INDEXPROJ answers diverged");

    follower.stop();
    let _ = handle.join();
    drop(fstore);
    drop(follower);
    cleanup(&fdb);
}

#[test]
fn fixed_fault_offsets_heal_and_converge() {
    let p = primary("fixed", 2, false);
    let journal = Journal::new(1 << 14);
    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        journal.clone(),
        PrimaryConfig { chunk_bytes: 1024, poll_interval_ms: 5 },
    )
    .unwrap();

    // Byte offsets at which the stream is cut mid-flight: inside the
    // handshake, mid-frame, at chunk-ish boundaries, at and past the end.
    let total = std::fs::metadata(&p.path).unwrap().len();
    let offsets = [1, 7, 64, total / 4, total / 2, total - 1, total, total + 512];
    for (i, &off) in offsets.iter().enumerate() {
        follower_case(
            &p,
            &server,
            &format!("fixed-short-{i}-{off}"),
            Some(FaultPlan::short_read(off)),
        );
    }
    // Hard read errors at the nth socket read.
    for n in [1u64, 2, 5, 9] {
        follower_case(&p, &server, &format!("fixed-failread-{n}"), Some(FaultPlan::fail_read(n)));
    }
    // And a clean follower, for contrast.
    follower_case(&p, &server, "fixed-clean", None);

    assert!(
        journal.events().iter().any(|s| matches!(s.event, JournalEvent::ReplFrameShipped { .. })),
        "primary journal never recorded a shipped chunk"
    );
    server.shutdown();
    cleanup(&p.path);
}

#[test]
fn bootstrap_faults_mid_snapshot_heal() {
    // A compacting primary: the WAL leads with a snapshot marker, so a
    // fresh follower must bootstrap from the snapshot file.
    let p = primary("boot", 2, true);
    let report = prov_repl::verify_store(&p.path).unwrap();
    assert!(report.generation > 0, "workload too small to compact; no marker to bootstrap from");
    assert_eq!(report.marker_backed, Some(true));

    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        Journal::disabled(),
        PrimaryConfig { chunk_bytes: 1024, poll_interval_ms: 5 },
    )
    .unwrap();

    let snap = TraceStore::snapshot_file_for(&p.path, report.generation);
    let snap_len = std::fs::metadata(&snap).unwrap().len();
    // Cuts landing inside the bootstrap body (and just around it).
    let offsets = [1, 40, snap_len / 2, snap_len - 1, snap_len, snap_len + 16];
    for (i, &off) in offsets.iter().enumerate() {
        follower_case(
            &p,
            &server,
            &format!("boot-short-{i}-{off}"),
            Some(FaultPlan::short_read(off)),
        );
    }
    follower_case(&p, &server, "boot-clean", None);
    server.shutdown();
    cleanup(&p.path);
}

#[test]
fn killed_followers_resume_from_their_durable_prefix() {
    let p = primary("kill", 2, false);
    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        Journal::disabled(),
        PrimaryConfig { chunk_bytes: 256, poll_interval_ms: 2 },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let total = std::fs::metadata(&p.path).unwrap().len();

    for (i, threshold) in [total / 8, total / 4, total / 2, (total * 3) / 4].into_iter().enumerate()
    {
        let tag = format!("kill-{i}-{threshold}");
        let fdb = tmp(&format!("{tag}-f"));

        // Phase 1: replicate until the local durable offset crosses the
        // threshold (or we're simply done), then kill the follower.
        {
            let follower = Follower::open(&fdb, Journal::disabled()).unwrap();
            let handle = follower.start(addr.clone(), fast_config(None));
            let deadline = Instant::now() + CATCH_UP;
            while follower.status().offset < threshold && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            follower.stop();
            let _ = handle.join();
        }

        // Phase 2: reopen — recovery hands back the durable prefix — and
        // finish the sync. No bootstrap may occur: the prefix CRC must
        // prove the kept bytes, and only frames past them are shipped.
        let follower = Follower::open(&fdb, Journal::disabled()).unwrap();
        let handle = follower.start(addr.clone(), fast_config(None));
        assert!(
            follower.wait_caught_up(CATCH_UP),
            "{tag}: follower never caught up after restart; status {:?}",
            follower.status()
        );
        let status = follower.status();
        assert_eq!(status.bootstraps, 0, "{tag}: restart must resume, not re-seed");
        assert_eq!(status.lag_frames, 0, "{tag}");

        let fstore = follower.store();
        let (ni, ip) = answers(&p.df, &fstore, &p.runs);
        assert_eq!(ni, p.ni, "{tag}: NI answers diverged");
        assert_eq!(ip, p.ip, "{tag}: INDEXPROJ answers diverged");

        // The strongest form of convergence: the follower's WAL is
        // byte-for-byte the primary's.
        let primary_bytes = std::fs::read(&p.path).unwrap();
        let follower_bytes = std::fs::read(&fdb).unwrap();
        assert_eq!(follower_bytes, primary_bytes, "{tag}: WALs are not byte-identical");

        follower.stop();
        let _ = handle.join();
        drop(fstore);
        drop(follower);
        cleanup(&fdb);
    }
    server.shutdown();
    cleanup(&p.path);
}

/// Polls until the follower's durable frame count equals the primary's
/// current one (and lag is zero).
fn wait_converged(follower: &Follower, p: &Primary, tag: &str) {
    let deadline = Instant::now() + CATCH_UP;
    loop {
        let want = p.store.repl_position().durable_frames;
        let s = follower.status();
        if s.frames == want && s.lag_frames == 0 && s.heard_from_primary {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{tag}: follower stuck at {:?}, primary at {want} frames",
            follower.status()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn live_appends_checkpoints_and_snapshots_resync() {
    let p = primary("live", 1, false);
    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        Journal::disabled(),
        PrimaryConfig { chunk_bytes: 1024, poll_interval_ms: 2 },
    )
    .unwrap();

    let fdb = tmp("live-f");
    let journal = Journal::new(1 << 12);
    let follower = Follower::open(&fdb, journal.clone()).unwrap();
    let handle = follower.start(server.addr().to_string(), fast_config(None));
    assert!(follower.wait_caught_up(CATCH_UP), "initial sync failed: {:?}", follower.status());

    // Live append: a new run lands while the follower is connected; it
    // must stream over without reconnecting.
    let mut runs = p.runs.clone();
    runs.push(testbed::run(&p.df, 3, &*p.store).run_id);
    p.store.sync_wal().unwrap();
    wait_converged(&follower, &p, "live-append");
    let (want_ni, want_ip) = answers(&p.df, &p.store, &runs);
    let fstore = follower.store();
    let (ni, ip) = answers(&p.df, &fstore, &runs);
    assert_eq!(ni, want_ni, "live-append: NI diverged");
    assert_eq!(ip, want_ip, "live-append: INDEXPROJ diverged");
    drop(fstore);

    // Checkpoint: the primary rewrites its WAL whole (new lineage). The
    // streaming connection must notice, resync, and reconverge.
    p.store.checkpoint().unwrap();
    wait_converged(&follower, &p, "checkpoint");
    let fstore = follower.store();
    let (ni, ip) = answers(&p.df, &fstore, &runs);
    assert_eq!(ni, want_ni, "checkpoint: NI diverged");
    assert_eq!(ip, want_ip, "checkpoint: INDEXPROJ diverged");
    assert!(follower.status().resyncs > 0, "checkpoint must force a resync");
    drop(fstore);

    // Snapshot: the WAL collapses to a marker; the follower's log is no
    // longer a prefix and must re-seed from the shipped snapshot file.
    p.store.snapshot().unwrap();
    wait_converged(&follower, &p, "snapshot");
    let fstore = follower.store();
    let (ni, ip) = answers(&p.df, &fstore, &runs);
    assert_eq!(ni, want_ni, "snapshot: NI diverged");
    assert_eq!(ip, want_ip, "snapshot: INDEXPROJ diverged");
    assert!(follower.status().bootstraps > 0, "snapshot must force a bootstrap");
    assert!(
        journal.events().iter().any(|s| matches!(s.event, JournalEvent::FollowerResync { .. })),
        "follower journal never recorded a resync"
    );

    follower.stop();
    let _ = handle.join();
    drop(fstore);
    drop(follower);
    server.shutdown();
    cleanup(&fdb);
    cleanup(&p.path);
}

#[test]
fn replica_queries_render_identically_and_refuse_stale() {
    let p = primary("query", 2, false);
    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        Journal::disabled(),
        PrimaryConfig::default(),
    )
    .unwrap();
    let fdb = tmp("query-f");
    let follower = Follower::open(&fdb, Journal::disabled()).unwrap();
    let handle = follower.start(server.addr().to_string(), fast_config(None));
    assert!(follower.wait_caught_up(CATCH_UP));
    let qserver = follower.serve_queries("127.0.0.1:0").unwrap();
    let qaddr = qserver.addr().to_string();

    // Both algorithms, bounded at zero staleness: a caught-up replica of a
    // static primary answers, and renders byte-identically to the same
    // execution on the primary.
    for algo in ["ni", "indexproj"] {
        let req = QueryRequest {
            query: "lin(<testbed:product[0,1]>, {LISTGEN_1})".into(),
            run: 0,
            all_runs: true,
            algo: algo.into(),
            wf: None,
            max_lag_frames: Some(0),
        };
        let resp = query_replica(&qaddr, &req).unwrap();
        let expected = prov_repl::execute_query(&p.store, &req).unwrap();
        assert_eq!(resp.answers, expected, "{algo}: replica rendering diverged");
        assert_eq!(resp.lag_frames, 0);
    }

    // A follower that has never reached any primary has unknown lag: any
    // bounded query gets the typed staleness refusal, however generous
    // the bound; an unbounded one is answered from local state.
    let lonely_db = tmp("query-lonely");
    let lonely = Follower::open(&lonely_db, Journal::disabled()).unwrap();
    let lonely_q = lonely.serve_queries("127.0.0.1:0").unwrap();
    let mut req = QueryRequest {
        query: "lin(<testbed:product[0,1]>, {LISTGEN_1})".into(),
        run: 0,
        all_runs: false,
        algo: "ni".into(),
        wf: None,
        max_lag_frames: Some(1_000_000),
    };
    match query_replica(&lonely_q.addr().to_string(), &req) {
        Err(ReplError::ReplicaStale { lag_frames, max_lag }) => {
            assert_eq!(lag_frames, u64::MAX);
            assert_eq!(max_lag, 1_000_000);
        }
        other => panic!("expected a typed staleness refusal, got {other:?}"),
    }
    req.max_lag_frames = None;
    let resp = query_replica(&lonely_q.addr().to_string(), &req).unwrap();
    assert!(resp.answers.iter().all(|a| a.contains("0 bindings") || !a.is_empty()));

    drop(lonely_q);
    drop(qserver);
    follower.stop();
    let _ = handle.join();
    drop(follower);
    drop(lonely);
    server.shutdown();
    cleanup(&fdb);
    cleanup(&lonely_db);
    cleanup(&p.path);
}

/// Splitmix64 — deterministic offsets for the seeded pass.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn seeded_fault_offsets_heal_and_converge() {
    let seed = std::env::var("CRASH_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    eprintln!("repl-torture seed: {seed} (replay with CRASH_TORTURE_SEED={seed})");
    let p = primary("seed", 2, true);
    let mut server = ReplServer::spawn(
        Arc::clone(&p.store),
        "127.0.0.1:0",
        Journal::disabled(),
        PrimaryConfig { chunk_bytes: 512, poll_interval_ms: 2 },
    )
    .unwrap();
    let total = std::fs::metadata(&p.path).unwrap().len();
    let mut rng = Rng(seed);
    for case in 0..6 {
        let plan = if case % 2 == 0 {
            FaultPlan::short_read(rng.next() % (total + 128))
        } else {
            FaultPlan::fail_read(1 + rng.next() % 12)
        };
        follower_case(&p, &server, &format!("seed-{case}"), Some(plan));
    }
    server.shutdown();
    cleanup(&p.path);
}
