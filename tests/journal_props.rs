//! Property test for the event journal's attribution contract: the typed
//! event stream reassembles into per-query totals that agree exactly with
//! (a) each query's own `QueryFinished` summary and (b) the store's
//! aggregate counters — no matter how many worker threads the query
//! layer fans out across. This is what makes `tprov tail`/`tprov slow`
//! trustworthy: counters never leak between concurrent queries.

use std::collections::HashMap;

use proptest::prelude::*;

use prov_obs::{Journal, JournalEvent, Obs, QueryCtx};
use prov_workgen::testbed;
use taverna_prov::prelude::*;

/// Probe totals reassembled from journal events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Totals {
    index_lookups: u64,
    records_read: u64,
    rows_scanned: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Testbed workloads at random size, queried by INDEXPROJ with the
    /// journal on, under 1–4 query worker threads. For every trace id:
    /// Σ `PlanStep` counters == the `QueryFinished` totals; and across
    /// all traces the journal accounts for the store's whole counter
    /// delta — per-query attribution loses and invents nothing.
    #[test]
    fn journal_events_reassemble_into_store_counters(
        l in 2usize..=3,
        d in 2usize..=4,
        threads in 1usize..=4,
        n_runs in 1usize..=5,
    ) {
        prov_core::set_query_threads(Some(threads));
        let df = testbed::generate(l);
        let store = TraceStore::in_memory();
        let runs: Vec<RunId> = (0..n_runs).map(|_| testbed::run(&df, d, &store).run_id).collect();

        let journal = Journal::new(1 << 16);
        store.attach_journal(&journal);
        let obs = Obs::disabled().with_journal(journal.clone());
        let ip = IndexProj::new(&df);
        let before = store.stats().snapshot();

        // Four distinct point queries, each under its own trace id; with
        // enough runs each single query additionally fans out internally.
        let mut wanted = Vec::new();
        for (i, j) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
            let q = LineageQuery::focused(
                PortRef::new("testbed", "product"),
                Index::from(vec![i, j]),
                [ProcessorName::from("LISTGEN_1")],
            );
            let raw = format!("lin(<testbed:product[{i},{j}]>, {{LISTGEN_1}})");
            let ctx = QueryCtx::new(raw).with_fingerprint(PlanCache::fingerprint(&q));
            wanted.push(ctx.trace);
            let plan = ip.plan(&q).unwrap();
            plan.execute_multi_ctx(&store, &runs, &obs, &ctx).unwrap();
        }
        let delta = store.stats().snapshot().since(before);

        let events = journal.drain();
        prop_assert_eq!(journal.dropped(), 0, "ring must not overflow in this workload");

        let mut step_totals: HashMap<u64, Totals> = HashMap::new();
        let mut finished_totals: HashMap<u64, Totals> = HashMap::new();
        for e in &events {
            match &e.event {
                JournalEvent::PlanStep {
                    trace, index_lookups, records_read, rows_scanned, ..
                } => {
                    let t = step_totals.entry(trace.0).or_default();
                    t.index_lookups += index_lookups;
                    t.records_read += records_read;
                    t.rows_scanned += rows_scanned;
                }
                JournalEvent::QueryFinished {
                    trace, index_lookups, records_read, rows_scanned, ..
                } => {
                    let t = finished_totals.entry(trace.0).or_default();
                    t.index_lookups += index_lookups;
                    t.records_read += records_read;
                    t.rows_scanned += rows_scanned;
                }
                _ => {}
            }
        }

        // Every query journalled, and only the queries we issued.
        let mut traces: Vec<u64> = finished_totals.keys().copied().collect();
        traces.sort_unstable();
        let mut expected: Vec<u64> = wanted.iter().map(|t| t.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(traces, expected);

        // (a) Per-trace: step events reassemble into the finished totals.
        for (trace, fin) in &finished_totals {
            let steps = step_totals.get(trace).copied().unwrap_or_default();
            prop_assert_eq!(steps, *fin, "trace {} steps vs finished", trace);
        }

        // (b) Across traces: the journal accounts for the store's whole
        // counter movement during the queries.
        let sum = finished_totals.values().fold(Totals::default(), |a, t| Totals {
            index_lookups: a.index_lookups + t.index_lookups,
            records_read: a.records_read + t.records_read,
            rows_scanned: a.rows_scanned + t.rows_scanned,
        });
        prop_assert_eq!(sum.index_lookups, delta.index_lookups);
        prop_assert_eq!(sum.records_read, delta.records_read);
        prop_assert_eq!(sum.rows_scanned, delta.rows_scanned);
    }
}
