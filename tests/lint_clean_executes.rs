//! Property: the static analyzer's bill of health is worth something.
//! Any generated chain workflow with **zero error-level diagnostics**
//! executes in prov-engine without type or iteration errors — the
//! pre-flight contract, tested from the outside.

use proptest::prelude::*;

use taverna_prov::dataflow::{analyze, BaseType, DataflowBuilder, PortType};
use taverna_prov::prelude::*;

/// One stage of an identity chain: the port depth of its `x`/`y` ports,
/// the base type coin (false = Int, true = String), and whether it also
/// carries a defaulted auxiliary port.
type Stage = (usize, bool, bool);

fn base_of(coin: bool) -> BaseType {
    if coin {
        BaseType::String
    } else {
        BaseType::Int
    }
}

/// A uniform value of the given depth and base (fanout 2 per level).
fn make_value(depth: usize, base: BaseType) -> Value {
    let lengths = vec![2usize; depth];
    match base {
        BaseType::String => Value::uniform(&lengths, || "v"),
        _ => Value::uniform(&lengths, || 7i64),
    }
}

/// Builds `in → S0 → S1 → … → out` where every stage runs the builtin
/// `identity` behavior. Stages with a different base type than their
/// upstream produce E001 diagnostics; everything else stays lintable
/// but executable.
fn chain(input_depth: usize, stages: &[Stage], spare_input: bool) -> prov_dataflow::Dataflow {
    let mut b = DataflowBuilder::new("chain");
    let input_base = base_of(stages[0].1);
    b.input("in", PortType::nested(input_base, input_depth));
    if spare_input {
        b.input("spare", PortType::atom(BaseType::Int));
    }
    let mut out_depth = input_depth;
    for (i, &(depth, coin, aux)) in stages.iter().enumerate() {
        let name = format!("S{i}");
        let t = PortType::nested(base_of(coin), depth);
        let p = b.processor_with_behavior(&name, "identity").in_port("x", t).out_port("y", t);
        if aux {
            p.in_port_with_default("aux", PortType::atom(BaseType::Int), Value::int(9));
        }
        if i == 0 {
            b.arc_from_input("in", &name, "x").unwrap();
        } else {
            b.arc(&format!("S{}", i - 1), "y", &name, "x").unwrap();
        }
        // Identity propagation: a_{i+1} = p_i + max(a_i − p_i, 0) = max(a_i, p_i).
        out_depth = out_depth.max(depth);
    }
    let last = format!("S{}", stages.len() - 1);
    let out_base = base_of(stages.last().unwrap().1);
    b.output("out", PortType::nested(out_base, out_depth));
    b.arc_to_output(&last, "y", "out").unwrap();
    b.build().unwrap()
}

proptest! {
    /// Lint-clean ⇒ executes. (The converse is not claimed: the engine
    /// never checks base types at runtime, so an E001 chain may well run.)
    #[test]
    fn chains_without_analysis_errors_execute(
        input_depth in 0usize..=2,
        stages in proptest::collection::vec((0usize..=1, any::<bool>(), any::<bool>()), 1..=4),
        spare_input in any::<bool>(),
    ) {
        let df = chain(input_depth, &stages, spare_input);
        let diags = analyze(&df);
        if diags.iter().any(prov_dataflow::Diagnostic::is_error) {
            // Deliberately smelly chain (base-type flip): out of scope here.
            return Ok(());
        }

        let mut inputs =
            vec![("in".to_string(), make_value(input_depth, base_of(stages[0].1)))];
        if spare_input {
            inputs.push(("spare".to_string(), Value::int(0)));
        }
        let store = TraceStore::in_memory();
        let run = Engine::new(BehaviorRegistry::new().with_builtins())
            .execute(&df, inputs, &store);
        prop_assert!(run.is_ok(), "lint-clean chain failed to execute: {:?}", run.err());
        prop_assert!(run.unwrap().output("out").is_some());
    }
}
