//! # taverna-prov
//!
//! Facade crate for the reproduction of Missier, Paton & Belhajjame,
//! *"Fine-grained and efficient lineage querying of collection-based
//! workflow provenance"* (EDBT 2010).
//!
//! The workspace is organised bottom-up (see `DESIGN.md`):
//!
//! * [`model`] — nested-collection values, indices, port types, bindings;
//! * [`dataflow`] — the workflow specification graph and Algorithm 1
//!   (static depth propagation);
//! * [`engine`] — Taverna's implicit iteration semantics (Defs. 2–3) and a
//!   data-driven executor that emits fine-grained provenance events;
//! * [`store`] — an embedded relational trace store (the paper used MySQL);
//! * [`lineage`] — the paper's contribution: Def. 1 lineage queries, the
//!   naïve baseline **NI**, and the **INDEXPROJ** algorithm (Alg. 2) that
//!   traverses the spec graph instead of the provenance graph;
//! * [`workgen`] — the synthetic testbed of §4.1 plus the GK/PD workflows;
//! * [`repl`] — WAL-shipping replication: a primary streams its durable
//!   log to follower stores that replay continuously and serve read-only
//!   lineage queries under an explicit staleness bound.
//!
//! ## Quickstart
//!
//! ```
//! use taverna_prov::prelude::*;
//!
//! // A two-processor pipeline: split a string, then tag each element.
//! let mut b = DataflowBuilder::new("demo");
//! b.input("words", PortType::list(BaseType::String));
//! b.processor("tag")
//!     .in_port("w", PortType::atom(BaseType::String))
//!     .out_port("t", PortType::atom(BaseType::String));
//! b.arc_from_input("words", "tag", "w").unwrap();
//! b.output("tagged", PortType::list(BaseType::String));
//! b.arc_to_output("tag", "t", "tagged").unwrap();
//! let dataflow = b.build().unwrap();
//!
//! let mut registry = BehaviorRegistry::new();
//! registry.register_fn("tag", |inputs| {
//!     let w = inputs[0].as_atom().unwrap().as_str().unwrap();
//!     Ok(vec![Value::str(&format!("{w}!"))])
//! });
//!
//! let store = TraceStore::in_memory();
//! let engine = Engine::new(registry);
//! let run = engine
//!     .execute(
//!         &dataflow,
//!         vec![("words".into(), Value::from(vec!["a", "b"]))],
//!         &store,
//!     )
//!     .unwrap();
//!
//! // Fine-grained lineage: which input produced tagged[1]?
//! let q = LineageQuery::focused(
//!     PortRef::new("demo", "tagged"),
//!     Index::single(1),
//!     [ProcessorName::from("demo")],
//! );
//! let answer = IndexProj::new(&dataflow).run(&store, run.run_id, &q).unwrap();
//! assert_eq!(answer.bindings[0].value, Value::str("b"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use prov_core as lineage;
pub use prov_dataflow as dataflow;
pub use prov_engine as engine;
pub use prov_model as model;
pub use prov_obs as obs;
pub use prov_repl as repl;
pub use prov_store as store;
pub use prov_workgen as workgen;

/// One-stop imports for typical use.
pub mod prelude {
    pub use prov_core::{
        ImpactQuery, IndexProj, LineageAnswer, LineagePlan, LineageQuery, NaiveImpact,
        NaiveLineage, PlanCache, PlanCacheStats,
    };
    pub use prov_dataflow::{BaseType, Dataflow, DataflowBuilder, PortType};
    pub use prov_engine::{Behavior, BehaviorRegistry, Engine, ExecutionMode, RunOutcome};
    pub use prov_model::{Atom, Binding, Index, PortRef, ProcessorName, RunId, Value, ValueId};
    pub use prov_obs::{Obs, Profiler, Registry};
    pub use prov_store::TraceStore;
}
