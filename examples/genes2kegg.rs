//! The paper's running example (Fig. 1): the `genes2Kegg` bioinformatics
//! workflow, answering the motivating question *"why is this particular
//! pathway in the output?"*.
//!
//! The KEGG web services are simulated by a deterministic synthetic
//! database (see DESIGN.md §3); the workflow shape, port names and
//! collection structure follow the paper.
//!
//! ```sh
//! cargo run --example genes2kegg
//! ```

use std::sync::Arc;

use prov_workgen::bio::{self, KeggDb};
use taverna_prov::prelude::*;

fn main() {
    let wf = bio::genes2kegg_workflow();
    let db = Arc::new(KeggDb::small(7));
    let store = TraceStore::in_memory();

    // The paper's example input shape: v = [[20816, 26416], [328788]].
    let input = Value::from(vec![vec!["mmu:20816", "mmu:26416"], vec!["mmu:328788"]]);
    println!("input  list_of_geneIDList = {input}");

    let outcome = bio::run_genes2kegg(&wf, Arc::clone(&db), input, &store);
    println!("\noutputs:");
    for (port, value) in &outcome.outputs {
        println!("  {port} = {value}");
    }

    // A partial fine-grained trace, in the notation of the paper's Fig. 2.
    println!("\npartial provenance trace (xform events of the left branch):");
    for rec in store.xforms_producing(
        outcome.run_id,
        &ProcessorName::from("get_pathways_by_genes"),
        "return",
        &Index::empty(),
    ) {
        let inp = rec.input("genes_id_list").unwrap();
        let out = rec.output("return").unwrap();
        println!(
            "  ⟨get_pathways_by_genes:genes_id_list{}, {}⟩ → ⟨get_pathways_by_genes:return{}, {}⟩",
            inp.index,
            store.value(inp.value).unwrap(),
            out.index,
            store.value(out.value).unwrap(),
        );
    }

    // "Why is this pathway in the output?" — fine-grained lineage of each
    // sub-list of paths_per_gene. The paper's claim: sub-list i depends
    // ONLY on the genes of input sub-list i.
    for i in 0..2u32 {
        let q = LineageQuery::focused(
            PortRef::new("genes2Kegg", "paths_per_gene"),
            Index::single(i),
            [ProcessorName::from("genes2Kegg")],
        );
        let ans = IndexProj::new(&wf).run(&store, outcome.run_id, &q).unwrap();
        println!("\n{q}");
        for b in &ans.bindings {
            println!("  depends on {b}");
        }
    }

    // While commonPathways depends on ALL the input genes.
    let q = LineageQuery::focused(
        PortRef::new("genes2Kegg", "commonPathways"),
        Index::single(0),
        [ProcessorName::from("genes2Kegg")],
    );
    let ni = NaiveLineage::new().run(&store, outcome.run_id, &q).unwrap();
    let ip = IndexProj::new(&wf).run(&store, outcome.run_id, &q).unwrap();
    assert!(ni.same_bindings(&ip));
    println!("\n{q}");
    for b in &ip.bindings {
        println!("  depends on {b}");
    }
}
