//! Multi-run lineage (§3.4): a parameter sweep produces many traces of the
//! same workflow; one INDEXPROJ plan answers the lineage question across
//! all of them, paying the graph traversal once.
//!
//! ```sh
//! cargo run --example multi_run_sweep
//! ```

use std::time::Instant;

use prov_workgen::{sweep, testbed};
use taverna_prov::prelude::*;

fn main() {
    // A mid-size synthetic workflow (Fig. 5 family): two chains of 40
    // processors joined by a cross product.
    let wf = testbed::generate(40);
    let store = TraceStore::in_memory();

    // Sweep the ListSize parameter over ten runs.
    let inputs: Vec<Vec<(String, Value)>> =
        (5..15).map(|d| vec![("ListSize".to_string(), Value::int(d))]).collect();
    let runs = sweep::record_runs(testbed::registry(), &wf, inputs, &store);
    println!("{} runs recorded, {} trace records total", runs.len(), store.total_record_count());

    // "Report the lineage of 2TO1_FINAL:Y[2,3] at LISTGEN_1, across the
    // whole sweep."
    let query = testbed::focused_query(&[2, 3]);
    println!("\n{query}  over {} runs", runs.len());

    // Phase s1 once…
    let ip = IndexProj::new(&wf);
    let t = Instant::now();
    let plan = ip.plan(&query).unwrap();
    let s1 = t.elapsed();
    // …then one cheap s2 per run.
    let t = Instant::now();
    let answers = plan.execute_multi(&store, &runs).unwrap();
    let s2_total = t.elapsed();

    for ans in answers.iter().take(3) {
        println!("  {} -> {}", ans.run, ans.bindings[0]);
    }
    println!("  … ({} answers)", answers.len());
    println!("\nINDEXPROJ: s1 (shared) = {s1:?}, s2 total over {} runs = {s2_total:?}", runs.len());

    // Contrast: NI re-traverses the provenance graph for every run.
    let t = Instant::now();
    let ni_answers = NaiveLineage::new().run_multi(&store, &runs, &query).unwrap();
    let ni_total = t.elapsed();
    assert_eq!(answers.len(), ni_answers.len());
    for (a, b) in answers.iter().zip(&ni_answers) {
        assert!(a.same_bindings(b));
    }
    println!("NI: {ni_total:?} total ({} trace queries/run)", ni_answers[0].trace_queries);
}
