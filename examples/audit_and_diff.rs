//! The operations side of a provenance system: execution reports,
//! trace auditing, composite views, run differencing, and value search.
//!
//! ```sh
//! cargo run --example audit_and_diff
//! ```

use prov_core::{audit_run, diff_lineage, diff_traces, parse_lineage};
use prov_dataflow::CompositeView;
use prov_engine::ReportingSink;
use prov_workgen::testbed;
use taverna_prov::prelude::*;

fn main() {
    let wf = testbed::generate(5);
    let store = TraceStore::in_memory();

    // Run twice with different list sizes, reporting execution work.
    let reporting = ReportingSink::new(&store);
    let engine = Engine::new(testbed::registry());
    let run_a =
        engine.execute(&wf, vec![("ListSize".into(), Value::int(3))], &reporting).unwrap().run_id;
    let run_b =
        engine.execute(&wf, vec![("ListSize".into(), Value::int(5))], &reporting).unwrap().run_id;
    println!("execution report (both runs):\n{}", reporting.report());

    // Audit both traces against the specification (Prop. 1 et al.).
    for run in [run_a, run_b] {
        print!("audit {}", audit_run(&wf, &store, run).unwrap());
    }

    // A composite view groups each chain into one virtual stage.
    let view = CompositeView::new()
        .group("chain_A", (1..=5).map(|i| ProcessorName::from(format!("CHAIN_A_{i}").as_str())))
        .group("chain_B", (1..=5).map(|i| ProcessorName::from(format!("CHAIN_B_{i}").as_str())));
    view.validate(&wf).unwrap();
    println!("\ncondensed view:\n{}", view.to_dot(&wf));

    // A lineage query written in the paper's notation, focused on a
    // composite: the view expands it to the member processors.
    let q = parse_lineage("lin(⟨2TO1_FINAL:Y[1,2]⟩, {chain_A})").unwrap();
    let q = LineageQuery::focused(q.target, q.index, view.expand_focus(q.focus.iter().cloned()));
    let ans = IndexProj::new(&wf).run(&store, run_b, &q).unwrap();
    println!("lineage at the chain_A composite: {} bindings", ans.bindings.len());
    for b in ans.bindings.iter().take(3) {
        println!("  {b}");
    }

    // Differencing the two runs (§3.4): same plan, both traces.
    let q = testbed::focused_query(&[1, 2]);
    let diff = diff_lineage(&wf, &store, run_a, run_b, &q).unwrap();
    println!("\nlineage diff:\n{diff}");
    let tdiff = diff_traces(&store, run_a, run_b);
    println!("divergent processors: {}", tdiff.divergent().len());

    // Value search: where did "item-2" flow?
    let hits = store.bindings_with_value(run_b, &Value::str("item-2"));
    println!("\n\"item-2\" appears in {} bindings of {}", hits.len(), run_b);
}
