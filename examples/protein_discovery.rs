//! The evaluation's "long workflow": BioAid protein discovery (PD) over a
//! synthetic PubMed corpus — a pipeline of ~28 processors where the
//! benefit of focused queries is largest.
//!
//! ```sh
//! cargo run --example protein_discovery
//! ```

use std::sync::Arc;
use std::time::Instant;

use prov_workgen::bio::{self, PubMedCorpus};
use taverna_prov::prelude::*;

fn main() {
    let wf = bio::protein_discovery_workflow(20);
    println!("protein_discovery workflow: {} processors, {} arcs", wf.node_count(), wf.arcs.len());

    let corpus = Arc::new(PubMedCorpus::new(11, 60));
    let store = TraceStore::in_memory();
    let outcome =
        bio::run_protein_discovery(&wf, Arc::clone(&corpus), vec!["p53", "tumor"], &store);

    let proteins = outcome.output("protein_terms").unwrap();
    println!("discovered protein terms: {proteins}");
    println!("trace: {} records", store.trace_record_count(outcome.run_id));

    // Focused question: which abstracts (and which query terms) does the
    // first discovered protein depend on?
    let q = LineageQuery::focused(
        PortRef::new("protein_discovery", "protein_terms"),
        Index::single(0),
        [ProcessorName::from("fetch_abstract"), ProcessorName::from("protein_discovery")],
    );
    println!("\n{q}");

    let t = Instant::now();
    let ni = NaiveLineage::new().run(&store, outcome.run_id, &q).unwrap();
    let ni_time = t.elapsed();

    let ip_proc = IndexProj::new(&wf);
    let plan = ip_proc.plan(&q).unwrap();
    let t = Instant::now();
    let ip = plan.execute(&store, outcome.run_id).unwrap();
    let ip_time = t.elapsed();

    assert!(ni.same_bindings(&ip));
    for b in ip.bindings.iter().take(6) {
        println!("  depends on {b}");
    }
    if ip.bindings.len() > 6 {
        println!("  … and {} more bindings", ip.bindings.len() - 6);
    }
    println!(
        "\nNI: {} trace queries in {:?}; INDEXPROJ: {} plan steps in {:?} (plus one-off planning)",
        ni.trace_queries,
        ni_time,
        plan.steps.len(),
        ip_time,
    );
}
