//! Quickstart: build a collection-oriented workflow, run it with full
//! provenance capture, and ask a fine-grained lineage question.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use taverna_prov::prelude::*;

fn main() {
    // 1. Specify a workflow: a list of words flows through two processors.
    //    `shout` is declared on atoms, so the list input is implicitly
    //    iterated (Taverna-style); `count` consumes the whole list.
    let mut b = DataflowBuilder::new("demo");
    b.input("words", PortType::list(BaseType::String));
    b.processor("shout")
        .in_port("w", PortType::atom(BaseType::String))
        .out_port("s", PortType::atom(BaseType::String));
    b.arc_from_input("words", "shout", "w").unwrap();
    b.processor("count")
        .in_port("xs", PortType::list(BaseType::String))
        .out_port("n", PortType::atom(BaseType::Int));
    b.arc("shout", "s", "count", "xs").unwrap();
    b.output("shouted", PortType::list(BaseType::String));
    b.output("how_many", PortType::atom(BaseType::Int));
    b.arc_to_output("shout", "s", "shouted").unwrap();
    b.arc_to_output("count", "n", "how_many").unwrap();
    let wf = b.build().unwrap();

    // 2. Bind behaviours (black boxes: values in, values out).
    let mut reg = BehaviorRegistry::new();
    reg.register_fn("shout", |inputs| {
        let w = inputs[0].as_atom().and_then(Atom::as_str).ok_or("string expected")?;
        Ok(vec![Value::str(&w.to_uppercase())])
    });
    reg.register_fn("count", |inputs| {
        Ok(vec![Value::int(inputs[0].as_list().map_or(0, <[Value]>::len) as i64)])
    });

    // 3. Execute, streaming the trace into the embedded store.
    let store = TraceStore::in_memory();
    let engine = Engine::new(reg);
    let outcome = engine
        .execute(&wf, vec![("words".into(), Value::from(vec!["so", "much", "provenance"]))], &store)
        .unwrap();
    println!("outputs:");
    for (port, value) in &outcome.outputs {
        println!("  {port} = {value}");
    }
    println!("trace: {} records in {}", store.trace_record_count(outcome.run_id), outcome.run_id);

    // 4. Fine-grained lineage: which input produced shouted[1]?
    let query = LineageQuery::focused(
        PortRef::new("demo", "shouted"),
        Index::single(1),
        [ProcessorName::from("demo")],
    );
    println!("\n{query}");

    // The naïve way: traverse the provenance graph.
    let ni = NaiveLineage::new().run(&store, outcome.run_id, &query).unwrap();
    // The paper's way: traverse the (tiny) specification graph instead.
    let ip = IndexProj::new(&wf).run(&store, outcome.run_id, &query).unwrap();
    assert!(ni.same_bindings(&ip));

    for b in &ip.bindings {
        println!("  answer: {b}");
    }
    println!(
        "  NI issued {} trace queries; INDEXPROJ issued {}.",
        ni.trace_queries, ip.trace_queries
    );

    // 5. Coarse lineage of the aggregate output: everything contributed.
    let coarse = LineageQuery::focused(
        PortRef::new("demo", "how_many"),
        Index::empty(),
        [ProcessorName::from("demo")],
    );
    let ans = IndexProj::new(&wf).run(&store, outcome.run_id, &coarse).unwrap();
    println!("\n{coarse}");
    for b in &ans.bindings {
        println!("  answer: {b}");
    }
}
