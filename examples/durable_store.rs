//! Durable provenance: traces written through the store's write-ahead log
//! survive process restarts, and lineage queries work identically on the
//! reopened database.
//!
//! ```sh
//! cargo run --example durable_store
//! ```

use prov_workgen::testbed;
use taverna_prov::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("taverna-prov-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("traces.wal");
    let _ = std::fs::remove_file(&path);

    let wf = testbed::generate(10);
    let run_id;

    // Session 1: execute and persist.
    {
        let store = TraceStore::open(&path).unwrap();
        run_id = testbed::run(&wf, 8, &store).run_id;
        println!(
            "session 1: recorded {} with {} records into {}",
            run_id,
            store.trace_record_count(run_id),
            path.display()
        );
        store.checkpoint().unwrap();
        println!(
            "session 1: checkpointed; wal is {} bytes",
            std::fs::metadata(&path).unwrap().len()
        );
    } // store dropped — "process exits"

    // Session 2: reopen and query.
    let store = TraceStore::open(&path).unwrap();
    println!(
        "session 2: reopened; {} runs, {} records",
        store.runs().len(),
        store.total_record_count()
    );

    let query = testbed::focused_query(&[3, 4]);
    let ans = IndexProj::new(&wf).run(&store, run_id, &query).unwrap();
    println!("\n{query}");
    for b in &ans.bindings {
        println!("  answer: {b}");
    }

    // New runs append cleanly after recovery.
    let run2 = testbed::run(&wf, 4, &store).run_id;
    println!("\nsession 2: appended {} ({} records)", run2, store.trace_record_count(run2));

    let _ = std::fs::remove_file(&path);
}
