//! Offline vendored stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of external crates the seed depended on are vendored as minimal
//! stand-ins under `vendor/`. This one keeps serde's *surface* — `Serialize`
//! and `Deserialize` as derivable traits, re-exported derive macros, an `rc`
//! feature — but swaps the streaming serializer architecture for a simple
//! tree model ([`json::Json`]): every consumer in the workspace round-trips
//! through `serde_json`, so the tree model is sufficient and much smaller.
//!
//! Deliberate deviations from real serde (documented, all invisible to the
//! workspace's usage):
//! * maps with non-string keys serialize as arrays of `[key, value]` pairs
//!   instead of erroring;
//! * `Option<T>` fields tolerate being absent from objects (treated as
//!   `null`) without needing `#[serde(default)]`.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

use json::{Error, Json};

/// Types that can render themselves into the [`Json`] tree model.
pub trait Serialize {
    /// Serializes `self` into a JSON tree.
    fn to_json_value(&self) -> Json;
}

/// Types that can reconstruct themselves from the [`Json`] tree model.
pub trait Deserialize: Sized {
    /// Deserializes a value from a JSON tree.
    fn from_json_value(v: &Json) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Json {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Json::Int(i)
                } else {
                    Json::Uint(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Json::Uint(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Float(f) => Ok(*f),
            Json::Int(i) => Ok(*i as f64),
            Json::Uint(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::expected("boolean", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Json {
        Json::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ------------------------------------------------------- pointers/references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        T::from_json_value(v).map(Rc::new)
    }
}

impl Deserialize for Rc<str> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(Rc::from(s.as_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

// ------------------------------------------------------------------- options

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Json {
        match self {
            Some(v) => v.to_json_value(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

// --------------------------------------------------------------- collections

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_json_value(item)?;
                }
                Ok(out)
            }
            other => Err(Error::expected("fixed-size array", other)),
        }
    }
}

/// Serializes a map: objects when every key renders as a string, arrays of
/// `[key, value]` pairs otherwise (a deviation from real serde, which errors
/// on non-string keys in JSON).
fn map_to_json<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Json {
    let all_str = entries.clone().all(|(k, _)| matches!(k.to_json_value(), Json::Str(_)));
    if all_str {
        Json::Object(
            entries
                .map(|(k, v)| {
                    let key = match k.to_json_value() {
                        Json::Str(s) => s,
                        _ => unreachable!("checked above"),
                    };
                    (key, v.to_json_value())
                })
                .collect(),
        )
    } else {
        Json::Array(
            entries.map(|(k, v)| Json::Array(vec![k.to_json_value(), v.to_json_value()])).collect(),
        )
    }
}

fn map_entries_from_json<K: Deserialize, V: Deserialize>(v: &Json) -> Result<Vec<(K, V)>, Error> {
    match v {
        Json::Object(fields) => fields
            .iter()
            .map(|(k, val)| {
                Ok((K::from_json_value(&Json::Str(k.clone()))?, V::from_json_value(val)?))
            })
            .collect(),
        Json::Array(items) => items
            .iter()
            .map(|item| match item {
                Json::Array(pair) if pair.len() == 2 => {
                    Ok((K::from_json_value(&pair[0])?, V::from_json_value(&pair[1])?))
                }
                other => Err(Error::expected("[key, value] pair", other)),
            })
            .collect(),
        other => Err(Error::expected("map", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Json {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        Ok(map_entries_from_json::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Json {
        map_to_json(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        Ok(map_entries_from_json::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

// -------------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Json) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Json::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Json {
    fn to_json_value(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json_value(v: &Json) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
