//! The tree data model serialization passes through.
//!
//! The real serde streams through `Serializer`/`Deserializer` visitors; this
//! vendored stand-in materialises a [`Json`] tree instead, which is all the
//! workspace needs (every consumer goes through `serde_json`).

use std::fmt;

/// A JSON-shaped tree value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64`.
    Int(i64),
    /// An integer in `(i64::MAX, u64::MAX]`.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Int(_) | Json::Uint(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// `value["key"]` lookup; yields `Null` for missing keys and non-objects,
    /// matching `serde_json::Value` indexing.
    fn index(&self, key: &str) -> &Json {
        const NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// `value[i]` lookup; yields `Null` out of bounds and for non-arrays.
    fn index(&self, i: usize) -> &Json {
        const NULL: Json = Json::Null;
        match self {
            Json::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A custom error message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// Type-mismatch error.
    pub fn expected(what: &str, got: &Json) -> Self {
        Error(format!("invalid type: expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}
