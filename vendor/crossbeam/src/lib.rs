//! Offline vendored stand-in for `crossbeam`, covering `thread::scope`.
//!
//! Built on `std::thread::scope` (stable since 1.63), which provides the same
//! borrow-the-stack guarantee crossbeam pioneered. The API shims crossbeam's
//! shapes: spawn closures take the scope as an argument, `join` returns
//! `Result`, and `scope` itself returns `Result` (always `Ok` here — std
//! propagates child panics by panicking at scope exit instead).

/// Scoped thread spawning.
pub mod thread {
    use std::marker::PhantomData;

    /// A scope handle passed to [`scope`] closures and re-passed to each
    /// spawned closure (crossbeam's signature; std's spawn closures take no
    /// argument).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, matching crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope
                    .spawn(move || f(&Scope { inner: inner_scope, _marker: PhantomData })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns. Always `Ok`: std's scope
    /// propagates child panics by panicking, so the `Err` arm (crossbeam's
    /// collected-panics case) is unreachable.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s, _marker: PhantomData })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3];
        let sums = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&n| s.spawn(move |_| n * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(sums, vec![10, 20, 30]);
    }
}
