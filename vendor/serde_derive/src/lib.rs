//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! `syn`/`quote` are not available offline, so this parses the item's token
//! stream by hand. Supported shapes are exactly what the workspace uses:
//! non-generic structs with named fields, newtype (single-field tuple)
//! structs, and enums with unit/newtype/tuple/struct variants. Supported
//! attributes: `#[serde(transparent)]`, `#[serde(skip)]` (fields),
//! `#[serde(rename_all = "lowercase")]`, `#[serde(from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    rename_all_lowercase: bool,
    /// Proxy type from `#[serde(from = "T", into = "T")]` (both assumed equal).
    proxy: Option<String>,
}

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (tree-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (item, attrs) = parse_item(input);
    gen_serialize(&item, &attrs).parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (tree-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (item, attrs) = parse_item(input);
    gen_deserialize(&item, &attrs).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> (Item, ContainerAttrs) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    let mut attrs = ContainerAttrs::default();
    collect_attrs(&tokens, &mut pos, |flag, value| match (flag, value) {
        ("transparent", _) => attrs.transparent = true,
        ("rename_all", Some(v)) => attrs.rename_all_lowercase = v == "lowercase",
        ("from", Some(v)) | ("into", Some(v)) => attrs.proxy = Some(v.to_string()),
        other => panic!("serde_derive: unsupported container attribute {other:?}"),
    });
    skip_visibility(&tokens, &mut pos);
    let kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving {name})");
    }
    let item = match kw.as_str() {
        "struct" => Item::Struct { name, shape: parse_struct_shape(&tokens, &mut pos) },
        "enum" => {
            let body = expect_group(&tokens, &mut pos, Delimiter::Brace);
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: expected struct or enum, found {other:?}"),
    };
    (item, attrs)
}

fn parse_struct_shape(tokens: &[TokenTree], pos: &mut usize) -> Shape {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            *pos += 1;
            Shape::Named(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            *pos += 1;
            Shape::Tuple(arity)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde_derive: unsupported struct body {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut skip = false;
        collect_attrs(&tokens, &mut pos, |flag, _| {
            if flag == "skip" {
                skip = true;
            }
        });
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        expect_punct(&tokens, &mut pos, ':');
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        collect_attrs(&tokens, &mut pos, |_, _| {});
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                pos += 1;
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}

/// Consumes leading `#[...]` attributes, reporting `#[serde(...)]` contents
/// to `on_serde` as `(flag, value)` pairs.
fn collect_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    mut on_serde: impl FnMut(&str, Option<&str>),
) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            panic!("serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(head)) = inner.first() {
            if head.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), &mut on_serde);
                }
            }
        }
        *pos += 2;
    }
}

fn parse_serde_args(stream: TokenStream, on_serde: &mut impl FnMut(&str, Option<&str>)) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let flag = expect_ident(&tokens, &mut pos);
        let value = if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            let TokenTree::Literal(lit) = &tokens[pos] else {
                panic!("serde_derive: expected string literal after {flag} =");
            };
            pos += 1;
            Some(lit.to_string().trim_matches('"').to_string())
        } else {
            None
        };
        on_serde(&flag, value.as_deref());
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        // pub(crate) / pub(super) / pub(in ...)
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skips one type, i.e. tokens until a `,` at angle-bracket depth 0.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < tokens.len() {
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn expect_punct(tokens: &[TokenTree], pos: &mut usize, c: char) {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == c => *pos += 1,
        other => panic!("serde_derive: expected {c:?}, found {other:?}"),
    }
}

fn expect_group(tokens: &[TokenTree], pos: &mut usize, delim: Delimiter) -> TokenStream {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *pos += 1;
            g.stream()
        }
        other => panic!("serde_derive: expected group {delim:?}, found {other:?}"),
    }
}

// ------------------------------------------------------------------ codegen

fn variant_tag(name: &str, attrs: &ContainerAttrs) -> String {
    if attrs.rename_all_lowercase {
        name.to_lowercase()
    } else {
        name.to_string()
    }
}

fn gen_serialize(item: &Item, attrs: &ContainerAttrs) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    let body = if let Some(proxy) = &attrs.proxy {
        format!(
            "let proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_json_value(&proxy)"
        )
    } else {
        match item {
            Item::Struct { shape: Shape::Named(fields), .. } if !attrs.transparent => {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    pushes.push_str(&format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_json_value(&self.{0})),\n",
                        f.name
                    ));
                }
                format!("::serde::json::Json::Object(vec![\n{pushes}])")
            }
            Item::Struct { shape: Shape::Named(fields), .. } => {
                // transparent named struct: exactly one serialized field.
                let f = fields.iter().find(|f| !f.skip).expect("transparent struct needs a field");
                format!("::serde::Serialize::to_json_value(&self.{})", f.name)
            }
            Item::Struct { shape: Shape::Tuple(1), .. } => {
                // Newtype structs delegate (matches serde with or without
                // `transparent`).
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            }
            Item::Struct { shape: Shape::Tuple(n), .. } => {
                let items = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::json::Json::Array(vec![{items}])")
            }
            Item::Struct { shape: Shape::Unit, .. } => "::serde::json::Json::Null".to_string(),
            Item::Enum { name, variants } => {
                let mut arms = String::new();
                for v in variants {
                    let tag = variant_tag(&v.name, attrs);
                    match &v.shape {
                        Shape::Unit => arms.push_str(&format!(
                            "{name}::{0} => ::serde::json::Json::Str(\"{tag}\".to_string()),\n",
                            v.name
                        )),
                        Shape::Tuple(1) => arms.push_str(&format!(
                            "{name}::{0}(x0) => ::serde::json::Json::Object(vec![(\"{tag}\".to_string(), ::serde::Serialize::to_json_value(x0))]),\n",
                            v.name
                        )),
                        Shape::Tuple(n) => {
                            let binds = (0..*n).map(|i| format!("x{i}")).collect::<Vec<_>>().join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_json_value(x{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            arms.push_str(&format!(
                                "{name}::{0}({binds}) => ::serde::json::Json::Object(vec![(\"{tag}\".to_string(), ::serde::json::Json::Array(vec![{items}]))]),\n",
                                v.name
                            ));
                        }
                        Shape::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_json_value({0}))",
                                        f.name
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            arms.push_str(&format!(
                                "{name}::{0} {{ {binds} }} => ::serde::json::Json::Object(vec![(\"{tag}\".to_string(), ::serde::json::Json::Object(vec![{items}]))]),\n",
                                v.name
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::json::Json {{\n{body}\n}}\n\
         }}"
    )
}

/// Expression deserializing field `fname` of object expression `obj` (missing
/// fields fall back to `Null`, so `Option` fields tolerate absence).
fn field_expr(obj: &str, fname: &str) -> String {
    format!(
        "match {obj}.get(\"{fname}\") {{\n\
             Some(x) => ::serde::Deserialize::from_json_value(x)?,\n\
             None => ::serde::Deserialize::from_json_value(&::serde::json::Json::Null)\n\
                 .map_err(|_| ::serde::json::Error::missing_field(\"{fname}\"))?,\n\
         }}"
    )
}

fn named_ctor(path: &str, fields: &[Field], obj: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default(),\n", f.name)
            } else {
                format!("{}: {},\n", f.name, field_expr(obj, &f.name))
            }
        })
        .collect::<String>();
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item, attrs: &ContainerAttrs) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    let body = if let Some(proxy) = &attrs.proxy {
        format!(
            "let proxy: {proxy} = ::serde::Deserialize::from_json_value(v)?;\n\
             Ok(::std::convert::From::from(proxy))"
        )
    } else {
        match item {
            Item::Struct { shape: Shape::Named(fields), .. } if !attrs.transparent => {
                format!(
                    "match v {{\n\
                         ::serde::json::Json::Object(_) => Ok({}),\n\
                         other => Err(::serde::json::Error::expected(\"object\", other)),\n\
                     }}",
                    named_ctor(name, fields, "v")
                )
            }
            Item::Struct { shape: Shape::Named(fields), .. } => {
                let f = fields.iter().find(|f| !f.skip).expect("transparent struct needs a field");
                let others = fields
                    .iter()
                    .filter(|g| g.name != f.name)
                    .map(|g| format!("{}: ::std::default::Default::default(),\n", g.name))
                    .collect::<String>();
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_json_value(v)?,\n{others} }})",
                    f.name
                )
            }
            Item::Struct { shape: Shape::Tuple(1), .. } => {
                format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
            }
            Item::Struct { shape: Shape::Tuple(n), .. } => {
                let items = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "match v {{\n\
                         ::serde::json::Json::Array(items) if items.len() == {n} => Ok({name}({items})),\n\
                         other => Err(::serde::json::Error::expected(\"array of {n}\", other)),\n\
                     }}"
                )
            }
            Item::Struct { shape: Shape::Unit, .. } => format!("Ok({name})"),
            Item::Enum { name, variants } => {
                let unit_arms = variants
                    .iter()
                    .filter(|v| matches!(v.shape, Shape::Unit))
                    .map(|v| {
                        format!("\"{}\" => Ok({name}::{}),\n", variant_tag(&v.name, attrs), v.name)
                    })
                    .collect::<String>();
                let mut tagged_arms = String::new();
                for v in variants {
                    let tag = variant_tag(&v.name, attrs);
                    match &v.shape {
                        Shape::Unit => {}
                        Shape::Tuple(1) => tagged_arms.push_str(&format!(
                            "\"{tag}\" => Ok({name}::{}(::serde::Deserialize::from_json_value(inner)?)),\n",
                            v.name
                        )),
                        Shape::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&items[{i}])?")
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            tagged_arms.push_str(&format!(
                                "\"{tag}\" => match inner {{\n\
                                     ::serde::json::Json::Array(items) if items.len() == {n} => Ok({name}::{0}({items})),\n\
                                     other => Err(::serde::json::Error::expected(\"array of {n}\", other)),\n\
                                 }},\n",
                                v.name
                            ));
                        }
                        Shape::Named(fields) => tagged_arms.push_str(&format!(
                            "\"{tag}\" => Ok({}),\n",
                            named_ctor(&format!("{name}::{}", v.name), fields, "inner")
                        )),
                    }
                }
                let str_arm = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!(
                        "::serde::json::Json::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\
                             other => Err(::serde::json::Error::custom(format!(\"unknown variant `{{other}}`\"))),\n\
                         }},\n"
                    )
                };
                let obj_arm = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!(
                        "::serde::json::Json::Object(fields) if fields.len() == 1 => {{\n\
                             let (tag, inner) = &fields[0];\n\
                             match tag.as_str() {{\n\
                                 {tagged_arms}\
                                 other => Err(::serde::json::Error::custom(format!(\"unknown variant `{{other}}`\"))),\n\
                             }}\n\
                         }}\n"
                    )
                };
                format!(
                    "match v {{\n\
                         {str_arm}\
                         {obj_arm}\
                         other => Err(::serde::json::Error::expected(\"enum\", other)),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n\
         }}"
    )
}
