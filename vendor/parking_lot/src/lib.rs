//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock means a thread panicked while holding the guard; the
//! workspace treats that as fatal anyway, so these wrappers recover the inner
//! guard and continue (parking_lot has no poisoning at all).

use std::sync;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard type aliases matching parking_lot's exports.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Read guard alias.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard alias.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
