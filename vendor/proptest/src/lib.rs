//! Offline vendored stand-in for `proptest`.
//!
//! Property tests still run many deterministic pseudo-random cases through
//! the same `proptest!`/`Strategy` surface syntax, but there is no shrinking:
//! a failing case panics with the assertion message directly. The combinator
//! subset implemented (`prop_map`, `prop_flat_map`, `prop_oneof!`, `Just`,
//! `any`, integer ranges, tuples, `collection::vec`, `&str` regex literals)
//! is exactly what the workspace's tests use.

/// Pseudo-random generation plumbing.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps offline runs quick while
            // still exercising the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is discarded.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic generator (splitmix64-seeded xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (e.g. the test's module path) so
        /// every property gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng { state: (z ^ (z >> 31)) | 1 }
        }

        /// The next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[lo, hi]` (inclusive; modulo sampling — fine
        /// for test-data spans).
        pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (u128::from(self.next_u64()) % span) as i128
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, for boxing.
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds from the alternatives; must be non-empty.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union(alternatives)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.in_range_i128(0, self.0.len() as i128 - 1) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Whole-domain generation, for [`any`].
    pub trait ArbitraryValue: Sized {
        /// Draws one value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's whole domain.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform over `T`'s whole domain.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }

    /// String literals are regex strategies. Supported subset: literal
    /// characters, `[a-z0-9_]`-style classes (with ranges), and `{m}` /
    /// `{m,n}` repetition — enough for patterns like `"[a-z]{1,4}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition bound"),
                        n.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("repetition bound");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.in_range_i128(lo as i128, hi as i128) as usize;
            for _ in 0..count {
                let k = rng.in_range_i128(0, alphabet.len() as i128 - 1) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element`-generated items.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                rng.in_range_i128(self.size.lo as i128, self.size.hi_inclusive as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `cases` deterministic random
/// cases. No shrinking — failures panic with the offending assertion.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test fn in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __successes: u32 = 0;
            let mut __attempts: u32 = 0;
            while __successes < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(100).max(1000),
                    "proptest: too many rejected cases (prop_assume! discards) in {}",
                    stringify!($name),
                );
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| { $body Ok(()) })();
                if __outcome.is_ok() {
                    __successes += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Discards the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Asserts within a property (panics — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_tuples_vecs_and_strings(
            (a, b) in (0usize..5, 10i64..=12),
            v in crate::collection::vec(0u32..7, 2..5),
            s in "[a-z]{1,4}",
            k in prop_oneof![Just(1u8), Just(2u8)],
            w in any::<u64>(),
        ) {
            prop_assume!(w % 2 == 0 || w % 2 == 1);
            prop_assert!(a < 5);
            prop_assert!((10..=12).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 5 && v.iter().all(|&x| x < 7));
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(k == 1 || k == 2);
        }
    }
}
