//! Offline vendored stand-in for `rand`.
//!
//! Provides [`rngs::SmallRng`] (a splitmix64-seeded xorshift64* generator —
//! deterministic and fast, which is all the workload generators need) plus
//! the [`Rng`]/[`SeedableRng`] trait subset the workspace calls. Streams
//! differ from the real crate's, which only affects generated test data, not
//! semantics.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(word: u64) -> Self;
}

impl Standard for u8 {
    fn sample(word: u64) -> Self {
        (word >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample(word: u64) -> Self {
        (word >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample(word: u64) -> Self {
        word
    }
}

impl Standard for usize {
    fn sample(word: u64) -> Self {
        word as usize
    }
}

impl Standard for bool {
    fn sample(word: u64) -> Self {
        word & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy {
    /// Picks uniformly in `[lo, hi)` given a random word. (Modulo sampling:
    /// the bias is negligible for the small spans used in test-data
    /// generation.)
    fn pick(lo: Self, hi: Self, word: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn pick(lo: Self, hi: Self, word: u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + (word % span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn pick(lo: Self, hi: Self, word: u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add((word % span) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self.next_u64())
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::pick(range.start, range.end, self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 finalizer: decorrelates adjacent seeds and maps the
            // all-zero seed away from xorshift's absorbing zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: usize = a.gen_range(3..17);
            assert!((3..17).contains(&x));
            assert_eq!(x, b.gen_range(3..17));
        }
        let neg: i32 = a.gen_range(-5..5);
        assert!((-5..5).contains(&neg));
        let _byte: u8 = a.gen();
    }
}
