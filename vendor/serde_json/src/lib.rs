//! Offline vendored stand-in for `serde_json`.
//!
//! Works over the vendored serde's [`Json`] tree model: serialization
//! materialises a tree and renders it as JSON text; deserialization parses
//! text into a tree and converts. The public functions mirror the subset of
//! the real crate's API the workspace uses (`to_string`, `to_string_pretty`,
//! `from_str`, `to_vec`, `from_slice`, [`Value`]).

pub use serde::json::Error;
use serde::json::Json;
use serde::{Deserialize, Serialize};

/// A dynamically-typed JSON value (alias of the serde stand-in's tree node).
pub type Value = Json;

/// `serde_json`-style result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let tree = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_json_value(&tree)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------ writer

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Uint(n) => out.push_str(&n.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; force a fractional
                // part so the text re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Matches serde_json: non-finite floats render as null.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Json> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Json::Null),
            Some(b't') => self.eat_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::custom(format!("unexpected character `{}`", c as char))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(Error::custom("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(Error::custom("expected `:` after object key"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1;
                                self.eat_literal("\\u")?;
                                self.pos -= 1;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
                    let c = s.chars().next().ok_or_else(|| Error::custom("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        // self.pos is at 'u'; consume the 4 hex digits after it.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end - 1; // caller advances past the final digit
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Json = from_str(r#"{"a": [1, -2, 3.5, "x\ny", true, null]}"#).unwrap();
        let text = to_string(&v).unwrap();
        let back: Json = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_uses_colon_space() {
        let v: Json = from_str(r#"{"kind":"xform"}"#).unwrap();
        assert!(to_string_pretty(&v).unwrap().contains("\"kind\": \"xform\""));
    }
}
