//! Offline vendored stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable shared byte buffer (an `Arc<[u8]>` plus a
//! window instead of the real crate's refcounted vtable machinery — same
//! semantics for this workspace's usage, minus the zero-copy `from_static`
//! special case, which here just copies). [`BytesMut`], [`Buf`] and
//! [`BufMut`] cover exactly the WAL framing code's needs.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// A buffer over a static slice (copied here; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds: {lo}..{hi} of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_json_value(&self) -> serde::json::Json {
        serde::json::Json::Array(
            self.iter().map(|&b| serde::json::Json::Uint(u64::from(b))).collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_json_value(v: &serde::json::Json) -> Result<Self, serde::json::Error> {
        let bytes: Vec<u8> = serde::Deserialize::from_json_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

/// A growable byte buffer used to assemble frames.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequential reads from a byte source, advancing an internal cursor.
pub trait Buf {
    /// Reads a little-endian `u32` and advances past it.
    fn get_u32_le(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let n = u32::from_le_bytes(head.try_into().expect("4-byte split"));
        *self = rest;
        n
    }
}

/// Sequential writes into a byte sink.
pub trait BufMut {
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, n: u32) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.slice(..2).len(), 2);
    }

    #[test]
    fn frame_round_trip() {
        let mut frame = BytesMut::with_capacity(12);
        frame.put_u32_le(3);
        frame.put_u32_le(0xDEAD_BEEF);
        frame.put_slice(b"abc");
        let mut cursor: &[u8] = &frame;
        assert_eq!(cursor.get_u32_le(), 3);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor, b"abc");
    }
}
