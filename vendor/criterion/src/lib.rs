//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`, the
//! `criterion_group!`/`criterion_main!` macros) over a plain wall-clock
//! timing loop: each benchmark is calibrated briefly, then timed over
//! `sample_size` batches, and the per-iteration median is printed. No
//! statistical analysis, plots, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", function_name.into()) }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Drives timing loops inside a benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `inner`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        // Calibrate: find an iteration count that takes ~1ms per sample.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(inner());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(inner());
            }
            samples.push(start.elapsed() / iters.max(1) as u32);
        }
        samples.sort_unstable();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.criterion.sample_size, last: None };
        f(&mut b);
        self.report(&id.into_benchmark_id().name, b.last);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.criterion.sample_size, last: None };
        f(&mut b, input);
        self.report(&id.name, b.last);
        self
    }

    /// Ends the group (restores the default sample count).
    pub fn finish(self) {
        self.criterion.sample_size = Criterion::DEFAULT_SAMPLES;
    }

    fn report(&self, bench: &str, time: Option<Duration>) {
        match time {
            Some(t) => println!("{}/{bench}: median {t:?}/iter", self.name),
            None => println!("{}/{bench}: no measurement", self.name),
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    const DEFAULT_SAMPLES: usize = 10;

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, last: None };
        f(&mut b);
        match b.last {
            Some(t) => println!("{name}: median {t:?}/iter"),
            None => println!("{name}: no measurement"),
        }
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: Criterion::DEFAULT_SAMPLES }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings.
pub trait IntoBenchmarkId {
    /// Converts.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
